package mrt

import (
	"fmt"

	"moas/internal/bgp"
)

// Peer is one entry of a TABLE_DUMP_V2 PEER_INDEX_TABLE.
type Peer struct {
	BGPID  [4]byte
	IP     [16]byte // IPv4 peers occupy the first 4 bytes
	Family bgp.Family
	AS     bgp.ASN
	AS4    bool // whether the AS was encoded in 4 octets
}

// PeerIndexTable is the TABLE_DUMP_V2 preamble record mapping peer indexes
// to peers; RIB entries refer to peers by index into it.
type PeerIndexTable struct {
	CollectorBGPID [4]byte
	ViewName       string
	Peers          []Peer
}

// Peer type flag bits (RFC 6396 §4.3.1).
const (
	peerFlagIPv6 = 0x1
	peerFlagAS4  = 0x2
)

// AppendBody appends the PEER_INDEX_TABLE body encoding to dst.
func (t *PeerIndexTable) AppendBody(dst []byte) []byte {
	dst = append(dst, t.CollectorBGPID[:]...)
	dst = appendU16(dst, uint16(len(t.ViewName)))
	dst = append(dst, t.ViewName...)
	dst = appendU16(dst, uint16(len(t.Peers)))
	for _, p := range t.Peers {
		var flags byte
		if p.Family == bgp.FamilyIPv6 {
			flags |= peerFlagIPv6
		}
		if p.AS4 {
			flags |= peerFlagAS4
		}
		dst = append(dst, flags)
		dst = append(dst, p.BGPID[:]...)
		if p.Family == bgp.FamilyIPv6 {
			dst = append(dst, p.IP[:]...)
		} else {
			dst = append(dst, p.IP[:4]...)
		}
		if p.AS4 {
			dst = appendU32(dst, uint32(p.AS))
		} else {
			dst = appendU16(dst, uint16(p.AS))
		}
	}
	return dst
}

// DecodePeerIndexTable decodes a PEER_INDEX_TABLE body into t.
func (t *PeerIndexTable) DecodePeerIndexTable(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: short PEER_INDEX_TABLE", ErrBadRecord)
	}
	copy(t.CollectorBGPID[:], b[:4])
	nameLen := int(u16(b[4:]))
	if len(b) < 6+nameLen+2 {
		return fmt.Errorf("%w: PEER_INDEX_TABLE name overrun", ErrBadRecord)
	}
	t.ViewName = string(b[6 : 6+nameLen])
	b = b[6+nameLen:]
	count := int(u16(b))
	b = b[2:]
	t.Peers = make([]Peer, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 5 {
			return fmt.Errorf("%w: peer %d truncated", ErrBadRecord, i)
		}
		flags := b[0]
		var p Peer
		copy(p.BGPID[:], b[1:5])
		b = b[5:]
		ipLen := 4
		p.Family = bgp.FamilyIPv4
		if flags&peerFlagIPv6 != 0 {
			ipLen = 16
			p.Family = bgp.FamilyIPv6
		}
		asLen := 2
		if flags&peerFlagAS4 != 0 {
			asLen = 4
			p.AS4 = true
		}
		if len(b) < ipLen+asLen {
			return fmt.Errorf("%w: peer %d body truncated", ErrBadRecord, i)
		}
		copy(p.IP[:], b[:ipLen])
		if p.AS4 {
			p.AS = bgp.ASN(u32(b[ipLen:]))
		} else {
			p.AS = bgp.ASN(u16(b[ipLen:]))
		}
		b = b[ipLen+asLen:]
		t.Peers = append(t.Peers, p)
	}
	return nil
}

// RIBEntry is one peer's route within a TABLE_DUMP_V2 RIB record.
// Attribute AS numbers are 4 octets per RFC 6396 §4.3.4.
type RIBEntry struct {
	PeerIndex      uint16
	OriginatedTime uint32
	Attrs          *bgp.Attrs
}

// RIB is a TABLE_DUMP_V2 RIB_IPV4_UNICAST / RIB_IPV6_UNICAST record: all
// peers' routes for one prefix.
type RIB struct {
	Seq     uint32
	Prefix  bgp.Prefix
	Entries []RIBEntry
}

// Subtype returns the record subtype matching the prefix family.
func (r *RIB) Subtype() uint16 {
	if r.Prefix.Family() == bgp.FamilyIPv6 {
		return SubtypeRIBIPv6Unicast
	}
	return SubtypeRIBIPv4Unicast
}

// AppendBody appends the RIB body encoding to dst.
func (r *RIB) AppendBody(dst []byte) []byte {
	dst = appendU32(dst, r.Seq)
	dst = r.Prefix.AppendNLRI(dst)
	dst = appendU16(dst, uint16(len(r.Entries)))
	for _, e := range r.Entries {
		dst = appendU16(dst, e.PeerIndex)
		dst = appendU32(dst, e.OriginatedTime)
		attrs := e.Attrs.AppendWireEx(nil, true)
		dst = appendU16(dst, uint16(len(attrs)))
		dst = append(dst, attrs...)
	}
	return dst
}

// DecodeRIB decodes a RIB record body for the given subtype into r.
func (r *RIB) DecodeRIB(b []byte, subtype uint16) error {
	var fam bgp.Family
	switch subtype {
	case SubtypeRIBIPv4Unicast:
		fam = bgp.FamilyIPv4
	case SubtypeRIBIPv6Unicast:
		fam = bgp.FamilyIPv6
	default:
		return fmt.Errorf("%w: RIB subtype %d", ErrBadRecord, subtype)
	}
	if len(b) < 4 {
		return fmt.Errorf("%w: short RIB", ErrBadRecord)
	}
	r.Seq = u32(b)
	b = b[4:]
	p, n, err := bgp.DecodeNLRI(b, fam)
	if err != nil {
		return fmt.Errorf("%w: RIB prefix: %v", ErrBadRecord, err)
	}
	r.Prefix = p
	b = b[n:]
	if len(b) < 2 {
		return fmt.Errorf("%w: RIB missing entry count", ErrBadRecord)
	}
	count := int(u16(b))
	b = b[2:]
	r.Entries = make([]RIBEntry, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < 8 {
			return fmt.Errorf("%w: RIB entry %d truncated", ErrBadRecord, i)
		}
		e := RIBEntry{PeerIndex: u16(b), OriginatedTime: u32(b[2:])}
		attrLen := int(u16(b[6:]))
		b = b[8:]
		if len(b) < attrLen {
			return fmt.Errorf("%w: RIB entry %d attrs truncated", ErrBadRecord, i)
		}
		e.Attrs = new(bgp.Attrs)
		if err := e.Attrs.DecodeAttrsEx(b[:attrLen], true); err != nil {
			return err
		}
		b = b[attrLen:]
		r.Entries = append(r.Entries, e)
	}
	return nil
}
