// Package rislive is a client for RIS Live-style BGP update feeds:
// JSON messages over a websocket, as RIPE's ris-live service streams
// them. The client owns its transport end to end — stdlib websocket
// (see ws.go), subscribe-on-connect, jittered exponential reconnect —
// and exposes the feed as a source.Source: each announced or withdrawn
// group becomes a Record whose attribute block is re-encoded to wire
// form and interned, so a JSON feed lands in the exact canonical
// *bgp.Attrs a file replay of the same updates produces. Delivery
// discontinuities (a dropped socket, a server-side queue overflow
// visible as a sequence jump) surface as gaps, with an exact missed
// count when the server numbers its messages.
package rislive

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"moas/internal/bgp"
	"moas/internal/source"
)

// Config configures a Client.
type Config struct {
	// URL is the ws:// feed endpoint. Required.
	URL string
	// Interner resolves re-encoded attribute blocks; shared with the
	// consuming engine (Next runs on the engine's goroutine). Required.
	Interner *bgp.AttrsInterner
	// OnGap is called on delivery discontinuities: an exact count when
	// the server sequences its messages, Known=false otherwise.
	OnGap func(source.Gap)
	// Backoff bounds the reconnect schedule; zero values use the
	// source package defaults.
	Backoff source.Backoff
	// Subscribe is the JSON subscription sent after each (re)connect.
	// Default: {"type":"ris_subscribe","data":{}}.
	Subscribe string
	// DialTimeout bounds one connection attempt. Default 10s.
	DialTimeout time.Duration
	// HealthyAfter is how long a connection must keep delivering before
	// the reconnect backoff resets (default 30s). Resetting on the dial
	// itself — the obvious choice — turns a server that accepts and then
	// immediately drops into a hot reconnect loop: every attempt
	// "succeeds", so every attempt retries at the base delay forever.
	HealthyAfter time.Duration
}

// Client is a connected RIS Live feed. It implements source.Source.
type Client struct {
	cfg     Config
	closeCh chan struct{}

	mu   sync.Mutex // guards conn swaps against Close
	conn *wsConn

	closed     atomic.Bool
	connected  atomic.Bool
	seq        atomic.Uint64
	reconnects atomic.Uint64
	gaps       atomic.Uint64
	lastErr    atomic.Value // string

	// Next-goroutine state.
	backoff source.Backoff
	// connectedAt is when the current transport came up; the backoff
	// resets only after HealthyAfter of sustained reads past it.
	connectedAt time.Time
	lastSrv     uint64 // last server-side sequence number (0 = none seen)
	fresh       bool   // first message after a reconnect pending
	pending     []pendRec
	pi          int
	scratch     bgp.Attrs
	encBuf      []byte
}

// pendRec is one decoded record awaiting delivery: a single RIS message
// fans out into one record per announcement group (the withdrawals ride
// on the first).
type pendRec struct {
	ts        uint32
	peerIP    [16]byte
	peerAS    bgp.ASN
	withdrawn []bgp.Prefix
	attrs     *bgp.Attrs
	nlri      []bgp.Prefix
}

// Dial connects to cfg.URL, subscribes, and returns a live Client. The
// first connection is synchronous — a bad URL or dead endpoint fails
// here, not silently inside the read loop; reconnects after that are
// the client's own business.
func Dial(cfg Config) (*Client, error) {
	if cfg.Interner == nil {
		return nil, fmt.Errorf("rislive: Config.Interner is required")
	}
	if cfg.Subscribe == "" {
		cfg.Subscribe = `{"type":"ris_subscribe","data":{}}`
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.HealthyAfter <= 0 {
		cfg.HealthyAfter = 30 * time.Second
	}
	c := &Client{cfg: cfg, closeCh: make(chan struct{}), backoff: cfg.Backoff, connectedAt: time.Now()}
	conn, err := wsDial(cfg.URL, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if err := conn.writeText([]byte(cfg.Subscribe)); err != nil {
		conn.close()
		return nil, err
	}
	c.conn = conn
	c.connected.Store(true)
	return c, nil
}

// Next implements source.Source: deliver the next update, reconnecting
// through transport loss. Only Close makes it return (io.EOF).
func (c *Client) Next(rec *source.Record) error {
	for {
		if c.pi < len(c.pending) {
			p := &c.pending[c.pi]
			c.pi++
			rec.TS = p.ts
			rec.PeerIP = p.peerIP
			rec.PeerAS = p.peerAS
			rec.Upd.Withdrawn = p.withdrawn
			rec.Upd.Attrs = p.attrs
			rec.Upd.NLRI = p.nlri
			rec.Seq = c.seq.Add(1)
			return nil
		}
		c.pending = c.pending[:0]
		c.pi = 0
		if c.closed.Load() {
			return io.EOF
		}
		op, payload, err := c.conn.readMessage()
		if err != nil {
			if err := c.reconnect(); err != nil {
				return err
			}
			continue
		}
		// The transport has delivered for a sustained window: only now is
		// the connection "healthy" and the reconnect schedule forgiven.
		if c.backoff.Fails() > 0 && time.Since(c.connectedAt) >= c.cfg.HealthyAfter {
			c.backoff.Reset()
		}
		if op != opText {
			continue
		}
		if err := c.ingest(payload); err != nil {
			c.lastErr.Store(err.Error())
		}
	}
}

// reconnect redials with jittered exponential backoff until it succeeds
// or the client is closed. It never gives up: a live monitor's answer
// to a dead feed is patience, not exit.
func (c *Client) reconnect() error {
	c.connected.Store(false)
	c.mu.Lock()
	c.conn.close()
	c.mu.Unlock()
	for {
		if c.closed.Load() {
			return io.EOF
		}
		select {
		case <-time.After(c.backoff.Next()):
		case <-c.closeCh:
			return io.EOF
		}
		conn, err := wsDial(c.cfg.URL, c.cfg.DialTimeout)
		if err != nil {
			c.lastErr.Store(err.Error())
			continue
		}
		if err := conn.writeText([]byte(c.cfg.Subscribe)); err != nil {
			c.lastErr.Store(err.Error())
			conn.close()
			continue
		}
		c.mu.Lock()
		if c.closed.Load() {
			c.mu.Unlock()
			conn.close()
			return io.EOF
		}
		c.conn = conn
		c.mu.Unlock()
		// No backoff.Reset() here: a dial that succeeds proves nothing on
		// an accept-then-drop server. The reset happens on the read path
		// after HealthyAfter of sustained delivery.
		c.connectedAt = time.Now()
		c.reconnects.Add(1)
		c.connected.Store(true)
		c.lastErr.Store("")
		c.fresh = true
		return nil
	}
}

// Status implements source.Source.
func (c *Client) Status() source.Status {
	st := source.Status{
		Kind:       "rislive",
		Endpoint:   c.cfg.URL,
		Connected:  c.connected.Load(),
		Records:    c.seq.Load(),
		Reconnects: c.reconnects.Load(),
		Gaps:       c.gaps.Load(),
	}
	if v, ok := c.lastErr.Load().(string); ok {
		st.LastError = v
	}
	return st
}

// Close implements source.Source: drop the socket and make Next return
// io.EOF. Safe to call more than once and from any goroutine.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	close(c.closeCh)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.connected.Store(false)
	return c.conn.close()
}

func (c *Client) emitGap(missed uint64, known bool) {
	c.gaps.Add(1)
	if c.cfg.OnGap != nil {
		c.cfg.OnGap(source.Gap{Missed: missed, Known: known})
	}
}

// The RIS Live JSON shapes. Path elements are heterogeneous — a number
// for a sequence hop, a nested array for an AS_SET — hence RawMessage.
// Seq is not part of RIPE's schema; the in-process fake server numbers
// its messages with it so reconnect tests can assert exact missed
// counts, and a real feed simply omits it.
type risEnvelope struct {
	Type string  `json:"type"`
	Data risData `json:"data"`
}

type risData struct {
	Timestamp     float64           `json:"timestamp"`
	Peer          string            `json:"peer"`
	PeerASN       string            `json:"peer_asn"`
	Seq           uint64            `json:"seq,omitempty"`
	Path          []json.RawMessage `json:"path"`
	Origin        string            `json:"origin"`
	Announcements []risAnnouncement `json:"announcements"`
	Withdrawals   []string          `json:"withdrawals"`
}

type risAnnouncement struct {
	NextHop  string   `json:"next_hop"`
	Prefixes []string `json:"prefixes"`
}

// ingest parses one feed message and expands it into pending records.
func (c *Client) ingest(payload []byte) error {
	var env risEnvelope
	if err := json.Unmarshal(payload, &env); err != nil {
		return fmt.Errorf("rislive: bad message: %w", err)
	}
	if env.Type != "ris_message" {
		return nil // pongs, subscription acks, errors: not updates
	}
	d := &env.Data

	// Sequence accounting before anything can fail: a gap is a property
	// of the transport, not of one message's parsability.
	if d.Seq > 0 {
		if c.lastSrv > 0 && d.Seq > c.lastSrv+1 {
			c.emitGap(d.Seq-c.lastSrv-1, true)
		}
		c.lastSrv = d.Seq
		c.fresh = false
	} else if c.fresh {
		// Reconnected to a feed that does not number messages: records
		// may have been lost, count unknowable.
		c.emitGap(0, false)
		c.fresh = false
	}

	var peerIP [16]byte
	if err := parsePeerIP(d.Peer, &peerIP); err != nil {
		return err
	}
	peerAS, err := strconv.ParseUint(d.PeerASN, 10, 32)
	if err != nil {
		return fmt.Errorf("rislive: peer_asn %q: %w", d.PeerASN, err)
	}
	ts := uint32(d.Timestamp)

	withdrawn, err := parsePrefixes(d.Withdrawals)
	if err != nil {
		return err
	}
	if len(d.Announcements) == 0 {
		if len(withdrawn) == 0 {
			return nil // nothing routable in this message
		}
		c.pending = append(c.pending, pendRec{ts: ts, peerIP: peerIP, peerAS: bgp.ASN(peerAS), withdrawn: withdrawn})
		return nil
	}

	path, maxAS, err := parsePath(d.Path)
	if err != nil {
		return err
	}
	for gi, ann := range d.Announcements {
		nlri, err := parsePrefixes(ann.Prefixes)
		if err != nil {
			return err
		}
		if len(nlri) == 0 {
			continue
		}
		c.scratch = bgp.Attrs{Origin: parseOrigin(d.Origin), ASPath: path}
		if err := parseIPv4(ann.NextHop, &c.scratch.NextHop); err != nil {
			return err
		}
		var attrs *bgp.Attrs
		if maxAS > 0xFFFF && !c.cfg.Interner.ASN4() {
			// The path cannot round-trip through the interner's 2-octet
			// wire encoding; keep a private decoded copy instead of
			// corrupting the canonical table.
			attrs = c.scratch.Clone()
		} else {
			c.encBuf = c.scratch.AppendWireEx(c.encBuf[:0], c.cfg.Interner.ASN4())
			attrs, err = c.cfg.Interner.Intern(c.encBuf)
			if err != nil {
				return err
			}
		}
		p := pendRec{ts: ts, peerIP: peerIP, peerAS: bgp.ASN(peerAS), attrs: attrs, nlri: nlri}
		if gi == 0 {
			p.withdrawn = withdrawn
		}
		c.pending = append(c.pending, p)
	}
	return nil
}

func parseOrigin(s string) bgp.Origin {
	switch s {
	case "", "igp", "IGP":
		return bgp.OriginIGP
	case "egp", "EGP":
		return bgp.OriginEGP
	default:
		return bgp.OriginIncomplete
	}
}

// parsePath decodes the heterogeneous RIS path array: numbers are
// sequence hops (merged into runs), nested arrays are AS_SETs.
func parsePath(raw []json.RawMessage) (bgp.Path, uint64, error) {
	if len(raw) == 0 {
		return nil, 0, nil
	}
	var path bgp.Path
	var run []bgp.ASN
	var maxAS uint64
	flush := func() {
		if len(run) > 0 {
			path = append(path, bgp.Segment{Type: bgp.SegSequence, ASes: run})
			run = nil
		}
	}
	for _, el := range raw {
		if len(el) > 0 && el[0] == '[' {
			var set []uint64
			if err := json.Unmarshal(el, &set); err != nil {
				return nil, 0, fmt.Errorf("rislive: path set: %w", err)
			}
			flush()
			ases := make([]bgp.ASN, len(set))
			for i, as := range set {
				if as > maxAS {
					maxAS = as
				}
				ases[i] = bgp.ASN(as)
			}
			path = append(path, bgp.Segment{Type: bgp.SegSet, ASes: ases})
			continue
		}
		var as uint64
		if err := json.Unmarshal(el, &as); err != nil {
			return nil, 0, fmt.Errorf("rislive: path hop: %w", err)
		}
		if as > maxAS {
			maxAS = as
		}
		run = append(run, bgp.ASN(as))
	}
	flush()
	return path, maxAS, nil
}

func parsePrefixes(ss []string) ([]bgp.Prefix, error) {
	var out []bgp.Prefix
	for _, s := range ss {
		p, err := bgp.ParsePrefix(s)
		if err != nil {
			return nil, fmt.Errorf("rislive: prefix %q: %w", s, err)
		}
		if p.Family() != bgp.FamilyIPv4 {
			continue // the engine is IPv4-only (study-era BGP-4)
		}
		out = append(out, p)
	}
	return out, nil
}

// parseIPv4 parses a dotted-quad next hop.
func parseIPv4(s string, dst *[4]byte) error {
	var b [4]byte
	var idx, val, digits int
	for i := 0; i < len(s); i++ {
		ch := s[i]
		switch {
		case ch >= '0' && ch <= '9':
			val = val*10 + int(ch-'0')
			digits++
			if val > 255 || digits > 3 {
				return fmt.Errorf("rislive: next_hop %q", s)
			}
		case ch == '.':
			if digits == 0 || idx >= 3 {
				return fmt.Errorf("rislive: next_hop %q", s)
			}
			b[idx] = byte(val)
			idx++
			val, digits = 0, 0
		default:
			return fmt.Errorf("rislive: next_hop %q", s)
		}
	}
	if idx != 3 || digits == 0 {
		return fmt.Errorf("rislive: next_hop %q", s)
	}
	b[3] = byte(val)
	*dst = b
	return nil
}

// parsePeerIP fills the BGP4MP 16-byte peer address convention: an IPv4
// peer occupies the first 4 bytes.
func parsePeerIP(s string, dst *[16]byte) error {
	var v4 [4]byte
	if err := parseIPv4(s, &v4); err != nil {
		return fmt.Errorf("rislive: peer %q (IPv4 peers only)", s)
	}
	copy(dst[:4], v4[:])
	return nil
}
