GO ?= go

.PHONY: build test race bench vet fmt ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -run XXX -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

ci: fmt vet build race
