package epilog

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"moas/internal/bgp"
	"moas/internal/core"
)

func pfx(s string) bgp.Prefix { return bgp.MustParsePrefix(s) }

func ep(p string, seq uint64, start, end int, open bool, origins ...bgp.ASN) Episode {
	return Episode{
		Prefix:  pfx(p),
		Origins: origins,
		Class:   core.ClassDistinctPaths,
		Seq:     seq,
		Start:   start,
		End:     end,
		Open:    open,
	}
}

func mustAppend(t *testing.T, l *Log, eps ...Episode) {
	t.Helper()
	for _, e := range eps {
		if err := l.Append(e); err != nil {
			t.Fatalf("Append(%+v): %v", e, err)
		}
	}
}

func mustQuery(t *testing.T, l *Log, q Query) []Episode {
	t.Helper()
	eps, err := l.Query(q)
	if err != nil {
		t.Fatalf("Query(%+v): %v", q, err)
	}
	return eps
}

// lifecycle appends the record sequence the kernel hook would emit for
// one closed episode: an open record at start, then the closing record.
func lifecycle(t *testing.T, l *Log, p string, seq uint64, start, end int, origins ...bgp.ASN) {
	t.Helper()
	mustAppend(t, l,
		ep(p, seq, start, start, true, origins...),
		ep(p, seq+1, start, end, false, origins...),
	)
}

func TestAppendQueryFold(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Prefix A: one closed episode, then a live one that changed origins.
	lifecycle(t, l, "10.0.0.0/8", 1, 3, 5, 100, 200)
	mustAppend(t, l,
		ep("10.0.0.0/8", 3, 9, 9, true, 100, 300),
		ep("10.0.0.0/8", 4, 9, 11, true, 100, 300, 400), // supersedes seq 3
	)
	// Prefix B: closed only.
	lifecycle(t, l, "192.168.0.0/16", 1, 0, 0, 7, 8)

	got := mustQuery(t, l, Query{Class: -1, AsOf: 12})
	want := []Episode{
		ep("10.0.0.0/8", 2, 3, 5, false, 100, 200),
		ep("10.0.0.0/8", 4, 9, 12, true, 100, 300, 400),
		ep("192.168.0.0/16", 2, 0, 0, false, 7, 8),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fold mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestOpenSupersededByClose(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// The open record's seq is below the closing record's: not live.
	mustAppend(t, l,
		ep("10.0.0.0/8", 1, 3, 3, true, 100, 200),
		ep("10.0.0.0/8", 2, 3, 6, false, 100, 200),
	)
	got := mustQuery(t, l, Query{Class: -1, AsOf: 50})
	if len(got) != 1 || got[0].Open {
		t.Fatalf("want only the closed episode, got %+v", got)
	}
}

func TestDuplicateReemissionDedups(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	eps := []Episode{
		ep("10.0.0.0/8", 1, 3, 3, true, 100, 200),
		ep("10.0.0.0/8", 2, 3, 6, false, 100, 200),
		ep("10.1.0.0/16", 5, 4, 4, true, 1, 2),
	}
	// A checkpoint-resume overlap re-appends byte-identical records.
	mustAppend(t, l, eps...)
	mustAppend(t, l, eps...)

	got := mustQuery(t, l, Query{Class: -1, AsOf: 8})
	want := []Episode{
		ep("10.0.0.0/8", 2, 3, 6, false, 100, 200),
		ep("10.1.0.0/16", 5, 4, 8, true, 1, 2),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dedup mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestQueryFilters(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	a := ep("10.0.0.0/8", 1, 0, 9, false, 100, 200)
	b := ep("10.1.0.0/16", 1, 5, 40, false, 100, 300)
	b.Class = core.ClassSplitView
	c := ep("10.2.0.0/16", 1, 50, 50, true, 7, 8)
	mustAppend(t, l, a, b, c)

	cases := []struct {
		name string
		q    Query
		want []uint32 // third octet of each expected prefix
	}{
		{"all", Query{Class: -1, AsOf: 60}, []uint32{0, 1, 2}},
		{"time-range", Query{From: 10, To: 20, Class: -1, AsOf: 60}, []uint32{1}},
		{"from-only", Query{From: 41, Class: -1, AsOf: 60}, []uint32{2}},
		{"to-only", Query{To: 4, Class: -1, AsOf: 60}, []uint32{0}},
		{"prefix", Query{Prefix: ptr(pfx("10.1.0.0/16")), Class: -1, AsOf: 60}, []uint32{1}},
		{"origin", Query{Origin: 200, Class: -1, AsOf: 60}, []uint32{0}},
		{"class", Query{Class: int(core.ClassSplitView), AsOf: 60}, []uint32{1}},
		{"min-days", Query{MinDays: 11, Class: -1, AsOf: 60}, []uint32{1, 2}},
		{"limit", Query{Class: -1, AsOf: 60, Limit: 2}, []uint32{0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mustQuery(t, l, tc.q)
			var octets []uint32
			for _, e := range got {
				octets = append(octets, uint32(e.Prefix.Addr4()[1]))
			}
			if !reflect.DeepEqual(octets, tc.want) {
				t.Fatalf("got prefixes %v, want %v (%+v)", octets, tc.want, got)
			}
		})
	}
}

func ptr[T any](v T) *T { return &v }

func TestSummary(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	mustAppend(t, l,
		ep("10.0.0.0/8", 1, 0, 0, false, 1, 2),   // 1 day
		ep("10.1.0.0/16", 1, 0, 4, false, 1, 2),  // 5 days
		ep("10.2.0.0/16", 1, 0, 10, false, 1, 2), // 11 days
		ep("10.3.0.0/16", 1, 0, 40, false, 1, 2), // 41 days, persistent
		ep("10.4.0.0/16", 1, 0, 0, true, 1, 2),   // open, rendered 100 days
	)
	s, err := l.Summary(Query{Class: -1, AsOf: 99})
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Total: 5, Open: 1, Closed: 4, Persistent: 2}
	want.ByClass[core.ClassDistinctPaths] = 5
	want.Durations = [5]int{1, 1, 1, 1, 1}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, l, "10.0.0.0/8", 1, 0, 2, 1, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	lifecycle(t, l2, "10.1.0.0/16", 1, 5, 6, 3, 4)
	got := mustQuery(t, l2, Query{Class: -1})
	if len(got) != 2 {
		t.Fatalf("want 2 episodes after reopen, got %+v", got)
	}
	if st := l2.Stats(); st.Segments != 1 {
		t.Fatalf("expected a single reused segment, stats %+v", st)
	}
}

func TestRotationAndAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every append rotates; compaction after 4 sealed.
	l, err := Open(dir, Options{RotateBytes: 1, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for day := 0; day < 8; day++ {
		lifecycle(t, l, "10.0.0.0/8", uint64(2*day+1), 3*day, 3*day+1, 100, 200)
	}
	st := l.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected auto-compactions, stats %+v", st)
	}
	if st.Segments >= 16 {
		t.Fatalf("compaction did not shrink the segment count: %+v", st)
	}
	got := mustQuery(t, l, Query{Class: -1})
	if len(got) != 8 {
		t.Fatalf("want 8 closed episodes, got %d: %+v", len(got), got)
	}
	for _, e := range got {
		if e.Open {
			t.Fatalf("superseded open record survived: %+v", e)
		}
	}
}

func TestCompactDropsSupersededAndDuplicates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{RotateBytes: 1, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	// Each append seals a segment: open, open (origin change), close,
	// plus a duplicate of the close.
	mustAppend(t, l,
		ep("10.0.0.0/8", 1, 0, 0, true, 1, 2),
		ep("10.0.0.0/8", 2, 0, 1, true, 1, 2, 3),
		ep("10.0.0.0/8", 3, 0, 4, false, 1, 2, 3),
		ep("10.0.0.0/8", 3, 0, 4, false, 1, 2, 3),
		ep("10.1.0.0/16", 9, 2, 2, true, 5, 6),
	)
	before := mustQuery(t, l, Query{Class: -1, AsOf: 7})
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	after := mustQuery(t, l, Query{Class: -1, AsOf: 7})
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("compaction changed the fold:\n before %+v\n after  %+v", before, after)
	}

	// The merged segment holds exactly the close and the live open:
	// the two superseded opens and the duplicate close are gone.
	var kept int
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		segs = append(segs, e.Name())
	}
	b, err := os.ReadFile(filepath.Join(dir, segs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeSegment(b, func(*Episode) error { kept++; return nil }); err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("compacted segment holds %d records (segments %v), want 2", kept, segs)
	}
	if st := l.Stats(); st.Segments != 2 { // merged + active
		t.Fatalf("stats after compact: %+v (files %v)", st, segs)
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, l, "10.0.0.0/8", 1, 0, 2, 1, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(1))
	whole, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		muck func() error
	}{
		{"half-record", func() error { return os.WriteFile(seg, whole[:len(whole)-3], 0o644) }},
		{"garbage-tail", func() error {
			return os.WriteFile(seg, append(append([]byte(nil), whole...), 0xFF, 0x07, 0x01), 0o644)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.muck(); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer l2.Close()
			if st := l2.Stats(); st.Truncated == 0 {
				t.Fatalf("no torn-tail truncation recorded: %+v", st)
			}
			// The damaged tail is gone; whole records survive and the
			// log accepts appends again.
			got := mustQuery(t, l2, Query{Class: -1})
			for _, e := range got {
				if e.Prefix != pfx("10.0.0.0/8") {
					t.Fatalf("unexpected episode %+v", e)
				}
			}
			lifecycle(t, l2, "10.9.0.0/16", 1, 5, 5, 7, 8)
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			// Restore the intact image for the next case.
			if err := os.WriteFile(seg, whole, 0o644); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTornHeaderRestarts(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("ME"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lifecycle(t, l, "10.0.0.0/8", 1, 0, 0, 1, 2)
	if got := mustQuery(t, l, Query{Class: -1}); len(got) != 1 {
		t.Fatalf("got %+v", got)
	}
}

func TestForeignFileRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("NOPE not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

func TestFutureVersionRefused(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), append([]byte(magic), 2), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, errVersion) {
		t.Fatalf("want version error, got %v", err)
	}
}

func TestOpenDirRemovesStrayTemps(t *testing.T) {
	dir := t.TempDir()
	stray := filepath.Join(dir, ".tmp-mepl-12345")
	if err := os.WriteFile(stray, []byte("half a compaction"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp survived OpenDir: %v", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	l := New(Options{})
	if err := l.Append(ep("10.0.0.0/8", 1, 0, 0, true, 1, 2)); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("unopened append: %v", err)
	}
	if _, err := l.Query(Query{}); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("unopened query: %v", err)
	}
	if err := l.OpenDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := l.OpenDir(t.TempDir()); err == nil {
		t.Fatal("double OpenDir succeeded")
	}
	// Invalid episodes are rejected without poisoning the log.
	if err := l.Append(ep("10.0.0.0/8", 1, 0, 0, true, 9)); err == nil {
		t.Fatal("single-origin episode accepted")
	}
	if err := l.Append(ep("10.0.0.0/8", 0, 0, 0, true, 1, 2)); err == nil {
		t.Fatal("seq-0 episode accepted")
	}
	if err := l.Append(ep("10.0.0.0/8", 1, 5, 4, true, 1, 2)); err == nil {
		t.Fatal("end-before-start episode accepted")
	}
	if err := l.Append(ep("10.0.0.0/8", 1, 0, 0, true, 1, 2)); err != nil {
		t.Fatalf("valid append after rejected ones: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ep("10.0.0.0/8", 2, 0, 0, true, 1, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestAppendAllocs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	e := ep("10.0.0.0/8", 1, 0, 3, true, 100, 200, 300)
	if err := l.Append(e); err != nil { // warm the scratch buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		e.Seq++
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("Append allocates %v times per record on the warm path", avg)
	}
}
