package bgp

import (
	"testing"
)

func TestOpenRoundTrip(t *testing.T) {
	m := &Open{Version: 4, AS: 6447, HoldTime: 180, BGPID: [4]byte{198, 32, 162, 100}, OptParams: []byte{1, 2, 3}}
	enc := m.AppendWire(nil)
	got, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	o, ok := got.(*Open)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if o.Version != 4 || o.AS != 6447 || o.HoldTime != 180 || o.BGPID != m.BGPID || string(o.OptParams) != string(m.OptParams) {
		t.Fatalf("open mismatch: %+v", o)
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	m := &Update{
		Withdrawn: []Prefix{MustParsePrefix("10.0.0.0/8")},
		Attrs:     sampleAttrs(),
		NLRI:      []Prefix{MustParsePrefix("198.51.100.0/24"), MustParsePrefix("203.0.113.0/24")},
	}
	enc := m.AppendWire(nil)
	got, _, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := got.(*Update)
	if !ok {
		t.Fatalf("decoded %T", got)
	}
	if len(u.Withdrawn) != 1 || u.Withdrawn[0] != m.Withdrawn[0] {
		t.Fatalf("withdrawn mismatch: %v", u.Withdrawn)
	}
	if len(u.NLRI) != 2 || u.NLRI[0] != m.NLRI[0] || u.NLRI[1] != m.NLRI[1] {
		t.Fatalf("nlri mismatch: %v", u.NLRI)
	}
	if !u.Attrs.Equal(m.Attrs) {
		t.Fatalf("attrs mismatch")
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	m := &Update{Withdrawn: []Prefix{MustParsePrefix("10.0.0.0/8")}}
	got, _, err := DecodeMessage(m.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	u := got.(*Update)
	if u.Attrs != nil || len(u.NLRI) != 0 || len(u.Withdrawn) != 1 {
		t.Fatalf("withdraw-only mismatch: %+v", u)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	m := &Notification{Code: 6, Subcode: 2, Data: []byte("bye")}
	got, _, err := DecodeMessage(m.AppendWire(nil))
	if err != nil {
		t.Fatal(err)
	}
	nt := got.(*Notification)
	if nt.Code != 6 || nt.Subcode != 2 || string(nt.Data) != "bye" {
		t.Fatalf("notification mismatch: %+v", nt)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	enc := AppendKeepalive(nil)
	got, n, err := DecodeMessage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != nil || n != headerLen {
		t.Fatalf("keepalive = (%v, %d)", got, n)
	}
}

func TestDecodeMessageErrors(t *testing.T) {
	valid := AppendKeepalive(nil)

	short := valid[:10]
	if _, _, err := DecodeMessage(short); err == nil {
		t.Error("short header accepted")
	}

	badMarker := append([]byte(nil), valid...)
	badMarker[0] = 0
	if _, _, err := DecodeMessage(badMarker); err == nil {
		t.Error("bad marker accepted")
	}

	badLen := append([]byte(nil), valid...)
	badLen[16], badLen[17] = 0, 5 // length < header
	if _, _, err := DecodeMessage(badLen); err == nil {
		t.Error("undersized length accepted")
	}

	badType := append([]byte(nil), valid...)
	badType[18] = 99
	if _, _, err := DecodeMessage(badType); err == nil {
		t.Error("unknown type accepted")
	}

	kaBody := (&Notification{Code: 1}).AppendWire(nil)
	kaBody[18] = MsgKeepalive // keepalive with a body
	if _, _, err := DecodeMessage(kaBody); err == nil {
		t.Error("keepalive with body accepted")
	}
}

func TestDecodeUpdateBodyErrors(t *testing.T) {
	bad := [][]byte{
		{0},                // too short
		{0, 5, 1, 2},       // withdrawn block overruns
		{0, 0, 0, 5, 1, 2}, // attr block overruns
	}
	for _, b := range bad {
		if _, err := DecodeUpdateBody(b); err == nil {
			t.Errorf("DecodeUpdateBody(% x) succeeded", b)
		}
	}
}

func TestMessageStreamDecoding(t *testing.T) {
	// Multiple messages back to back must decode sequentially via n.
	var buf []byte
	buf = (&Open{Version: 4, AS: 1, HoldTime: 90, BGPID: [4]byte{1, 1, 1, 1}}).AppendWire(buf)
	buf = AppendKeepalive(buf)
	buf = (&Update{NLRI: []Prefix{MustParsePrefix("10.0.0.0/8")}, Attrs: &Attrs{ASPath: Seq(65000), NextHop: [4]byte{1, 2, 3, 4}}}).AppendWire(buf)

	var kinds []string
	for len(buf) > 0 {
		msg, n, err := DecodeMessage(buf)
		if err != nil {
			t.Fatal(err)
		}
		switch msg.(type) {
		case *Open:
			kinds = append(kinds, "open")
		case *Update:
			kinds = append(kinds, "update")
		case nil:
			kinds = append(kinds, "keepalive")
		}
		buf = buf[n:]
	}
	want := []string{"open", "keepalive", "update"}
	for i := range want {
		if i >= len(kinds) || kinds[i] != want[i] {
			t.Fatalf("stream kinds = %v, want %v", kinds, want)
		}
	}
}

func TestRouteOrigin(t *testing.T) {
	r := Route{Prefix: MustParsePrefix("10.0.0.0/8"), Attrs: &Attrs{ASPath: MustParsePath("701 8584")}}
	if o, ok := r.Origin(); !ok || o != 8584 {
		t.Fatalf("Origin = %v %v", o, ok)
	}
	r.Attrs.ASPath = MustParsePath("701 {1,2}")
	if _, ok := r.Origin(); ok {
		t.Fatal("AS_SET-terminated route reported an origin")
	}
	r.Attrs = nil
	if _, ok := r.Origin(); ok {
		t.Fatal("attr-less route reported an origin")
	}
	if r.Path() != nil {
		t.Fatal("attr-less route reported a path")
	}
}

func BenchmarkUpdateAppendWire(b *testing.B) {
	m := &Update{Attrs: sampleAttrs(), NLRI: []Prefix{MustParsePrefix("198.51.100.0/24")}}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendWire(buf[:0])
	}
}

func BenchmarkDecodeUpdate(b *testing.B) {
	enc := (&Update{Attrs: sampleAttrs(), NLRI: []Prefix{MustParsePrefix("198.51.100.0/24")}}).AppendWire(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeMessage(enc); err != nil {
			b.Fatal(err)
		}
	}
}
