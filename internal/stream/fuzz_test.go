package stream

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// checkpointCorpusSeeds returns the fuzz seed inputs: a real mid-archive
// checkpoint in every encoding (JSON, binary container v1, binary
// container v2 with the shared attrs table) plus damaged variants. The
// same bytes are committed under testdata/fuzz/FuzzCheckpointRestore
// (see TestGenerateCheckpointFuzzCorpus).
func checkpointCorpusSeeds(t testing.TB) map[string][]byte {
	t.Helper()
	ck := tinyCheckpoint(t)
	bin, err := AppendCheckpointBinary(nil, ck)
	if err != nil {
		t.Fatal(err)
	}
	binV1, err := AppendCheckpointBinaryV1(nil, ck)
	if err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := EncodeCheckpointJSON(&js, ck); err != nil {
		t.Fatal(err)
	}
	flipped := bytes.Clone(bin)
	flipped[len(flipped)/3] ^= 0x10
	flippedV1 := bytes.Clone(binV1)
	flippedV1[len(flippedV1)/3] ^= 0x10
	return map[string][]byte{
		"binary":              bin,
		"binary-v1":           binV1,
		"json":                js.Bytes(),
		"binary-truncated":    bin[:len(bin)/2],
		"binary-v1-truncated": binV1[:len(binV1)/2],
		"json-truncated":      js.Bytes()[:js.Len()/2],
		"binary-flipped":      flipped,
		"binary-v1-flipped":   flippedV1,
		"empty":               {},
	}
}

// FuzzCheckpointRestore is the checkpoint surface's robustness claim:
// any byte string fed to the sniffing decoder either errors or yields a
// checkpoint that NewFromCheckpoint restores into a fully usable engine
// (queries, spans, a re-checkpoint in both codecs) — or rejects, without
// panicking or leaking shard goroutines either way.
func FuzzCheckpointRestore(f *testing.F) {
	for _, seed := range checkpointCorpusSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		e, err := NewFromCheckpoint(Config{Shards: 2}, ck)
		if err != nil {
			return
		}
		defer e.Close()
		e.Stats()
		e.ActiveConflicts()
		e.Spans()
		out := e.Checkpoint()
		if _, err := AppendCheckpointBinary(nil, out); err != nil {
			t.Fatalf("restored engine re-encodes with error: %v", err)
		}
		if err := EncodeCheckpointJSON(&bytes.Buffer{}, out); err != nil {
			t.Fatalf("restored engine re-encodes to JSON with error: %v", err)
		}
	})
}

// TestGenerateCheckpointFuzzCorpus rewrites the committed seed corpus
// from the current codecs; a skip unless MOAS_GEN_FUZZ_CORPUS=1.
func TestGenerateCheckpointFuzzCorpus(t *testing.T) {
	if os.Getenv("MOAS_GEN_FUZZ_CORPUS") == "" {
		t.Skip("set MOAS_GEN_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointRestore")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range checkpointCorpusSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
