package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"moas/internal/bgp"
	"moas/internal/rib"
	"moas/internal/simnet"
	"moas/internal/topology"
)

// Scenario is a fully materialized study: topology, address plan,
// collector vantages, the ground-truth episode set, and the observation
// calendar. It is deterministic for a given Spec.
type Scenario struct {
	Spec Spec

	Graph    *topology.Graph
	Plan     *topology.Plan
	Net      *simnet.Net
	Vantages []bgp.ASN

	Episodes []Episode

	// AggregatePrefixes are the AS_SET-terminated aggregates (§III's 12
	// excluded routes): prefix, aggregating AS, and the set members.
	AggregatePrefixes []Aggregate

	// ObservedDays lists calendar-day indexes with archive data, ascending.
	ObservedDays []int

	// BackgroundPool is every allocated prefix never used by an episode —
	// the single-origin bulk of the table for full-fidelity days.
	BackgroundPool []bgp.Prefix

	// startsOn[d] / endsOn[d] index episodes by activation day for the
	// incremental driver.
	startsOn map[int][]int
	endsOn   map[int][]int

	// routeCache memoizes EpisodeRoutes materializations.
	routeCache map[int][]rib.PeerRoute
}

// Aggregate is one AS_SET-terminated aggregate route specification.
type Aggregate struct {
	Prefix     bgp.Prefix
	Aggregator bgp.ASN
	SetMembers []bgp.ASN
}

// prefixPool hands out unique prefixes to episodes; rejected draws can be
// returned for use as plain background prefixes.
type prefixPool struct {
	items []bgp.Prefix
}

func (p *prefixPool) pop() (bgp.Prefix, error) {
	if len(p.items) == 0 {
		return bgp.Prefix{}, fmt.Errorf("scenario: prefix pool exhausted; enlarge the plan")
	}
	out := p.items[len(p.items)-1]
	p.items = p.items[:len(p.items)-1]
	return out, nil
}

func (p *prefixPool) pushBack(ps []bgp.Prefix) {
	// Prepend so returned prefixes are not immediately re-drawn.
	p.items = append(ps, p.items...)
}

// incident ASes placed into the topology for the scripted storms.
const (
	as8584  bgp.ASN = 8584
	as15412 bgp.ASN = 15412
	as3561  bgp.ASN = 3561
)

// Build materializes a scenario from a spec. Every random draw flows from
// spec.Seed; two builds of the same spec are identical.
func Build(spec Spec) (*Scenario, error) {
	if spec.Days() < 2 {
		return nil, fmt.Errorf("scenario: window %s..%s too short", spec.Start, spec.End)
	}
	r := rand.New(rand.NewSource(spec.Seed))

	// --- Topology, with incident ASes present.
	topo := spec.Topology
	required := append([]bgp.ASN{}, topo.RequiredStubs...)
	for _, a := range []bgp.ASN{as8584, as15412} {
		found := false
		for _, b := range required {
			found = found || a == b
		}
		if !found {
			required = append(required, a)
		}
	}
	topo.RequiredStubs = required
	g, err := topology.Generate(topo)
	if err != nil {
		return nil, err
	}
	// The 2001 storm's signature needs AS 15412 behind AS 3561.
	if g.Has(as3561) && !g.Connected(as3561, as15412) {
		g.AddTransit(as3561, as15412)
	}

	plan, err := topology.BuildPlan(g, spec.Plan)
	if err != nil {
		return nil, err
	}

	sc := &Scenario{
		Spec:     spec,
		Graph:    g,
		Plan:     plan,
		Net:      simnet.New(g),
		startsOn: make(map[int][]int),
		endsOn:   make(map[int][]int),
	}
	sc.pickVantages(r)
	sc.Net.SetVantages(sc.Vantages)
	sc.pickObservedDays(r)

	// --- Prefix pool: shuffled; episodes pop from the tail.
	pool := &prefixPool{items: append([]bgp.Prefix{}, plan.All...)}
	r.Shuffle(len(pool.items), func(i, j int) {
		pool.items[i], pool.items[j] = pool.items[j], pool.items[i]
	})

	if err := sc.buildExchangePoints(r, pool); err != nil {
		return nil, err
	}
	if err := sc.buildBackground(r, pool); err != nil {
		return nil, err
	}
	if err := sc.buildStorms(r, pool); err != nil {
		return nil, err
	}
	if err := sc.buildAggregates(r, pool); err != nil {
		return nil, err
	}
	sc.BackgroundPool = pool.items

	// --- Index episodes by activation for the incremental driver.
	days := spec.Days()
	for i := range sc.Episodes {
		e := &sc.Episodes[i]
		start := e.Start
		if start < 0 {
			start = 0
		}
		if start >= days || e.End() <= 0 {
			continue
		}
		end := e.End()
		if end > days {
			end = days
		}
		sc.startsOn[start] = append(sc.startsOn[start], i)
		sc.endsOn[end] = append(sc.endsOn[end], i)
	}
	return sc, nil
}

// pickVantages selects the collector's peers: every tier-1, then tier-2
// and tier-3 ASes round-robin until NumVantages.
func (sc *Scenario) pickVantages(r *rand.Rand) {
	g := sc.Graph
	var t1, t2, t3 []bgp.ASN
	for _, a := range g.ASes() {
		switch g.TierOf(a) {
		case topology.Tier1:
			t1 = append(t1, a)
		case topology.Tier2:
			t2 = append(t2, a)
		case topology.Tier3:
			t3 = append(t3, a)
		}
	}
	r.Shuffle(len(t2), func(i, j int) { t2[i], t2[j] = t2[j], t2[i] })
	r.Shuffle(len(t3), func(i, j int) { t3[i], t3[j] = t3[j], t3[i] })
	vs := append([]bgp.ASN{}, t1...)
	for i := 0; len(vs) < sc.Spec.NumVantages && (i < len(t2) || i < len(t3)); i++ {
		if i < len(t2) && len(vs) < sc.Spec.NumVantages {
			vs = append(vs, t2[i])
		}
		if i < len(t3) && len(vs) < sc.Spec.NumVantages {
			vs = append(vs, t3[i])
		}
	}
	if len(vs) > sc.Spec.NumVantages {
		vs = vs[:sc.Spec.NumVantages]
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
	sc.Vantages = vs
}

// pickObservedDays removes GapDays random days, never a storm day, the
// first day or the last day.
func (sc *Scenario) pickObservedDays(r *rand.Rand) {
	days := sc.Spec.Days()
	protected := map[int]bool{0: true, days - 1: true}
	for _, st := range sc.Spec.Storms {
		d0 := sc.Spec.DayIndex(st.Date)
		for i := range st.DayCounts {
			protected[d0+i] = true
		}
	}
	gaps := map[int]bool{}
	for len(gaps) < sc.Spec.GapDays {
		d := r.Intn(days)
		if !protected[d] && !gaps[d] {
			gaps[d] = true
		}
	}
	for d := 0; d < days; d++ {
		if !gaps[d] {
			sc.ObservedDays = append(sc.ObservedDays, d)
		}
	}
}

// buildExchangePoints creates the §VI-A IX mesh episodes: long-lived,
// many origins, valid.
func (sc *Scenario) buildExchangePoints(r *rand.Rand, pool *prefixPool) error {
	g := sc.Graph
	var transit []bgp.ASN
	for _, a := range g.ASes() {
		if t := g.TierOf(a); t == topology.Tier2 || t == topology.Tier3 {
			transit = append(transit, a)
		}
	}
	days := sc.Spec.Days()
	for i := 0; i < sc.Spec.ExchangePoints; i++ {
		p, err := pool.pop()
		if err != nil {
			return err
		}
		nm := 3 + r.Intn(6)
		members := make([]bgp.ASN, 0, nm)
		seen := map[bgp.ASN]bool{}
		for len(members) < nm {
			a := transit[r.Intn(len(transit))]
			if !seen[a] {
				seen[a] = true
				members = append(members, a)
			}
		}
		start := r.Intn(sc.Spec.ExchangePointStartMax + 1)
		sc.Episodes = append(sc.Episodes, Episode{
			ID: len(sc.Episodes), Prefix: p, Cause: CauseExchangePoint,
			Start: start, Len: days - start,
			Owner: members[0], Members: members,
		})
	}
	return nil
}

// activeTarget interpolates the anchor curve at calendar day d.
func (sc *Scenario) activeTarget(d int) float64 {
	anchors := sc.Spec.Anchors
	t := sc.Spec.DayDate(d)
	if len(anchors) == 0 {
		return 0
	}
	if !t.After(anchors[0].Date) {
		return anchors[0].Active
	}
	for i := 1; i < len(anchors); i++ {
		if !t.After(anchors[i].Date) {
			span := anchors[i].Date.Sub(anchors[i-1].Date).Hours()
			frac := t.Sub(anchors[i-1].Date).Hours() / span
			return anchors[i-1].Active + frac*(anchors[i].Active-anchors[i-1].Active)
		}
	}
	// Extrapolate with the last segment's slope.
	last, prev := anchors[len(anchors)-1], anchors[0]
	if len(anchors) >= 2 {
		prev = anchors[len(anchors)-2]
	} else {
		return last.Active
	}
	slope := (last.Active - prev.Active) / last.Date.Sub(prev.Date).Hours()
	return last.Active + slope*t.Sub(last.Date).Hours()
}

// buildBackground draws the background episode stream: warm-up arrivals
// (negative start days) seed the initial population; in-window arrivals
// follow the anchor-driven Poisson rate.
func (sc *Scenario) buildBackground(r *rand.Rand, pool *prefixPool) error {
	mix := sc.Spec.Mix
	mix.normalize()
	meanD := mix.MeanCalendarDays()
	days := sc.Spec.Days()

	// The warm-up must cover the longest possible duration, or the initial
	// population under-represents long-lived conflicts by E[(D-W)+]/E[D].
	warmup := maxInt(sc.Spec.WarmupDays, int(mix.TailMax*mix.TailStretch)+1)

	for d := -warmup; d < days; d++ {
		target := sc.activeTarget(maxInt(d, 0))
		lambda := target / meanD
		for k := poisson(r, lambda); k > 0; k-- {
			length := mix.Sample(r)
			if d+length <= 0 {
				continue // warm-up episode over before the window opens
			}
			if err := sc.addBackgroundEpisode(r, pool, d, length); err != nil {
				return err
			}
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addBackgroundEpisode casts one background episode: short ones are faults
// or transitions, long ones draw a valid multihoming cause. Placements
// that would not be visible as a conflict from the vantages are redrawn.
func (sc *Scenario) addBackgroundEpisode(r *rand.Rand, pool *prefixPool, start, length int) error {
	prefix, err := pool.pop()
	if err != nil {
		return err
	}
	owner := sc.Plan.Owner[prefix]

	for attempt := 0; attempt < 8; attempt++ {
		e := Episode{
			ID: len(sc.Episodes), Prefix: prefix,
			Start: start, Len: length, Owner: owner,
		}
		switch {
		case length == 1:
			e.Cause = CauseMisconfig
			e.Other = sc.randomOtherAS(r, owner)
		case length <= 9:
			if r.Float64() < 0.5 {
				e.Cause = CauseMisconfig
				e.Other = sc.randomOtherAS(r, owner)
			} else {
				e.Cause = CauseTransition
				e.Other = sc.randomTransit(r, owner)
			}
		default:
			e = sc.castTailEpisode(r, e)
		}
		if sc.episodeVisible(&e) {
			sc.Episodes = append(sc.Episodes, e)
			return nil
		}
	}
	// Visibility failed repeatedly (pathological placement): fall back to
	// a plain hijack, redrawing the attacker until the conflict surfaces.
	e := Episode{
		ID: len(sc.Episodes), Prefix: prefix, Cause: CauseMisconfig,
		Start: start, Len: length, Owner: owner,
	}
	for attempt := 0; attempt < 64; attempt++ {
		e.Other = sc.randomOtherAS(r, owner)
		if sc.episodeVisible(&e) {
			break
		}
	}
	sc.Episodes = append(sc.Episodes, e)
	return nil
}

// castTailEpisode assigns a long-lived valid cause and its cast.
func (sc *Scenario) castTailEpisode(r *rand.Rand, e Episode) Episode {
	w := sc.Spec.TailCauseWeights
	total := w.StaticDisjoint + w.PrivateASE + w.OrigTran + w.SplitView
	x := r.Float64() * total
	g := sc.Graph
	providers := g.Providers(e.Owner)
	switch {
	case x < w.StaticDisjoint:
		e.Cause = CauseStaticDisjoint
		if len(providers) > 0 {
			e.Via = providers[r.Intn(len(providers))]
		}
		e.Other = sc.randomTransit(r, e.Owner)
	case x < w.StaticDisjoint+w.PrivateASE:
		e.Cause = CausePrivateASE
		// Both origins are transit ASes; the real customer's private AS
		// was substituted away.
		e.Owner = sc.randomTransit(r, 0)
		e.Other = sc.randomTransit(r, e.Owner)
	case x < w.StaticDisjoint+w.PrivateASE+w.OrigTran:
		e.Cause = CauseOrigTran
		if len(providers) > 0 {
			e.Transit = providers[r.Intn(len(providers))]
		} else {
			e.Transit = sc.randomTransit(r, e.Owner)
		}
	default:
		e.Cause = CauseSplitView
		// A transit AS with ≥2 customers splits between two of them.
		e.Transit, e.Other = sc.randomSplitPair(r, e.Owner)
	}
	return e
}

// randomOtherAS draws any AS other than owner (hijackers can be anyone).
func (sc *Scenario) randomOtherAS(r *rand.Rand, owner bgp.ASN) bgp.ASN {
	ases := sc.Graph.ASes()
	for {
		a := ases[r.Intn(len(ases))]
		if a != owner {
			return a
		}
	}
}

// randomTransit draws a tier-2/3 AS other than excl.
func (sc *Scenario) randomTransit(r *rand.Rand, excl bgp.ASN) bgp.ASN {
	g := sc.Graph
	ases := g.ASes()
	for {
		a := ases[r.Intn(len(ases))]
		if a == excl {
			continue
		}
		if t := g.TierOf(a); t == topology.Tier2 || t == topology.Tier3 {
			return a
		}
	}
}

// randomSplitPair finds a transit AS that has both the owner-side customer
// and a second customer to split toward; falls back to the owner's
// provider and a sibling customer.
func (sc *Scenario) randomSplitPair(r *rand.Rand, owner bgp.ASN) (transit, other bgp.ASN) {
	g := sc.Graph
	providers := g.Providers(owner)
	if len(providers) == 0 {
		return sc.randomTransit(r, owner), sc.randomOtherAS(r, owner)
	}
	t := providers[r.Intn(len(providers))]
	customers := g.Customers(t)
	for attempt := 0; attempt < 16; attempt++ {
		c := customers[r.Intn(len(customers))]
		if c != owner {
			return t, c
		}
	}
	return t, sc.randomOtherAS(r, owner)
}

// episodeVisible checks that the episode's advertisements actually surface
// two or more origins at the collector — conflicts the vantages cannot see
// would silently deflate every calibration target.
func (sc *Scenario) episodeVisible(e *Episode) bool {
	vrs := sc.Net.CollectorPaths(e.Advertisements(sc.Net))
	seen := map[bgp.ASN]bool{}
	for _, vr := range vrs {
		if o, ok := vr.Path.Origin(); ok {
			seen[o] = true
			if len(seen) >= 2 {
				return true
			}
		}
	}
	return false
}

// buildStorms scripts the mass false-origination incidents. Victim
// prefixes are drawn fresh from the pool; a declining DayCounts profile is
// realized by giving prefix i a lifetime of as many days as there are
// profile entries ≥ its index (cleanup removes the most recently counted
// prefixes first).
func (sc *Scenario) buildStorms(r *rand.Rand, pool *prefixPool) error {
	for _, st := range sc.Spec.Storms {
		d0 := sc.Spec.DayIndex(st.Date)
		if len(st.DayCounts) == 0 {
			continue
		}
		peak := 0
		for _, c := range st.DayCounts {
			if c > peak {
				peak = c
			}
		}
		attacker := bgp.ASN(st.Attacker)
		via := bgp.ASN(st.Via)
		// Victim prefixes must actually surface as conflicts: a prefix
		// owned by the attacker, or one where the false origin wins at
		// every vantage, never shows two origins. Such draws go back to
		// the background pool.
		var rejected []bgp.Prefix
		pickVictim := func(life int) (Episode, error) {
			for {
				prefix, err := pool.pop()
				if err != nil {
					return Episode{}, err
				}
				e := Episode{
					Prefix: prefix, Cause: CauseHijackStorm,
					Start: d0, Len: life,
					Owner: sc.Plan.Owner[prefix], Other: attacker, Via: via,
				}
				if e.Owner != attacker && sc.episodeVisible(&e) {
					return e, nil
				}
				rejected = append(rejected, prefix)
			}
		}
		for i := 0; i < peak; i++ {
			// Lifetime: number of consecutive days from d0 the profile
			// still includes this prefix (profiles must be non-increasing
			// after day 0 for this construction).
			life := 0
			for _, c := range st.DayCounts {
				if i < c {
					life++
				} else {
					break
				}
			}
			if life == 0 {
				continue
			}
			e, err := pickVictim(life)
			if err != nil {
				return err
			}
			e.ID = len(sc.Episodes)
			sc.Episodes = append(sc.Episodes, e)
		}
		pool.pushBack(rejected)
	}
	return nil
}

// buildAggregates creates the AS_SET-terminated aggregates excluded by
// §III.
func (sc *Scenario) buildAggregates(r *rand.Rand, pool *prefixPool) error {
	for i := 0; i < sc.Spec.AggregatePrefixes; i++ {
		p, err := pool.pop()
		if err != nil {
			return err
		}
		agg := sc.randomTransit(r, 0)
		members := []bgp.ASN{sc.randomOtherAS(r, agg), sc.randomOtherAS(r, agg)}
		sc.AggregatePrefixes = append(sc.AggregatePrefixes, Aggregate{
			Prefix: p, Aggregator: agg, SetMembers: members,
		})
	}
	return nil
}
