package stream

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moas/internal/bgp"
	"moas/internal/mrt"
	"moas/internal/source"
)

// runArchive builds a two-day BGP4MP archive with a MOAS conflict on day
// d0 that survives into day d0+1: two peers originate 10.0.0.0/8 from
// different ASes.
func runArchive(t *testing.T, d0 uint32) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	upd := func(ts uint32, peerAS bgp.ASN, peerIP byte, u *bgp.Update) {
		m := &mrt.BGP4MPMessage{PeerAS: peerAS, LocalAS: 65000, Family: bgp.FamilyIPv4}
		m.PeerIP[3] = peerIP
		m.Data = u.AppendWire(nil)
		if err := w.WriteBGP4MPMessage(ts, m); err != nil {
			t.Fatal(err)
		}
	}
	attrsFrom := func(origin bgp.ASN) *bgp.Attrs {
		return &bgp.Attrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Path{{Type: bgp.SegSequence, ASes: []bgp.ASN{65001, origin}}},
			NextHop: [4]byte{192, 0, 2, 1},
		}
	}
	p := bgp.MustParsePrefix("10.0.0.0/8")
	day0 := d0 * 86400
	upd(day0+10, 65001, 1, &bgp.Update{Attrs: attrsFrom(70), NLRI: []bgp.Prefix{p}})
	upd(day0+20, 65002, 2, &bgp.Update{Attrs: attrsFrom(71), NLRI: []bgp.Prefix{p}})
	upd(day0+86400+30, 65002, 2, &bgp.Update{Withdrawn: []bgp.Prefix{p}})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunFileSourceMatchesDirectFeed: draining a file source through Run
// produces the same registry as feeding the identical updates directly,
// with observation days as absolute UTC days.
func TestRunFileSourceMatchesDirectFeed(t *testing.T) {
	const d0 = 12000
	archive := runArchive(t, d0)

	e := New(Config{Shards: 2})
	src := source.NewFileReader(bytes.NewReader(archive), "mem", e.Interner())
	if err := e.Run(src, &RunOptions{CloseFinalDay: true, Now: func() uint32 { return 0 }}); err != nil {
		t.Fatal(err)
	}
	e.Close()

	want := New(Config{Shards: 1})
	attrs := func(origin bgp.ASN) *bgp.Attrs {
		return &bgp.Attrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Path{{Type: bgp.SegSequence, ASes: []bgp.ASN{65001, origin}}},
			NextHop: [4]byte{192, 0, 2, 1},
		}
	}
	p := bgp.MustParsePrefix("10.0.0.0/8")
	pk := func(b byte, as bgp.ASN) PeerKey {
		var k PeerKey
		k.IP[3] = b
		k.AS = as
		return k
	}
	want.ApplyUpdate(d0, pk(1, 65001), &bgp.Update{Attrs: attrs(70), NLRI: []bgp.Prefix{p}})
	want.ApplyUpdate(d0, pk(2, 65002), &bgp.Update{Attrs: attrs(71), NLRI: []bgp.Prefix{p}})
	want.CloseDay(d0)
	want.ApplyUpdate(d0+1, pk(2, 65002), &bgp.Update{Withdrawn: []bgp.Prefix{p}})
	want.CloseDay(d0 + 1)
	want.Close()

	diffRegistries(t, want.Registry(), e.Registry())
	if got := e.Records(); got != 3 {
		t.Fatalf("Records()=%d, want 3 (the source's delivered-update cursor)", got)
	}
	if st := e.Stats(); st.Source != nil {
		t.Fatalf("Stats.Source=%+v after Run returned, want nil", st.Source)
	}
	if st := want.Stats(); st.RouteNodes == 0 || st.KernelStates == 0 {
		t.Fatalf("memory accounting empty: %+v", st)
	}
}

// chanSource is a scriptable source: records are pushed on a channel and
// Next blocks until one arrives or the source closes.
type chanSource struct {
	ch     chan source.Record
	done   chan struct{}
	closed atomic.Bool
	once   sync.Once
}

func newChanSource() *chanSource {
	return &chanSource{ch: make(chan source.Record), done: make(chan struct{})}
}

func (s *chanSource) Next(rec *source.Record) error {
	select {
	case r := <-s.ch:
		*rec = r
		return nil
	case <-s.done:
		return io.EOF
	}
}

func (s *chanSource) Status() source.Status {
	return source.Status{Kind: "chan", Connected: !s.closed.Load()}
}

func (s *chanSource) Close() error {
	s.closed.Store(true)
	s.once.Do(func() { close(s.done) })
	return nil
}

// TestRunWallClockDayClose: on a quiet feed, the day in flight closes
// when the wall clock crosses midnight — continuous operation does not
// wait for the next update to extend conflict durations.
func TestRunWallClockDayClose(t *testing.T) {
	const d0 = 13000
	var clk atomic.Uint32
	clk.Store(d0*86400 + 100)

	src := newChanSource()
	e := New(Config{Shards: 1})
	defer e.Close()
	runDone := make(chan error, 1)
	stop := make(chan struct{})
	go func() { runDone <- e.Run(src, &RunOptions{Stop: stop, Now: clk.Load, Tick: time.Millisecond}) }()

	p := bgp.MustParsePrefix("10.0.0.0/8")
	attrs := &bgp.Attrs{
		Origin:  bgp.OriginIGP,
		ASPath:  bgp.Path{{Type: bgp.SegSequence, ASes: []bgp.ASN{65001}}},
		NextHop: [4]byte{192, 0, 2, 1},
	}
	var rec source.Record
	rec.Seq, rec.TS, rec.PeerAS = 1, d0*86400+100, 65001
	rec.Upd = bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{p}}
	src.ch <- rec

	// Nothing closed yet: the update's day is still open.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Messages != 1 {
		if time.Now().After(deadline) {
			t.Fatal("update never ingested")
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.Stats().LastClosedDay; got != -1 {
		t.Fatalf("LastClosedDay=%d before midnight, want -1", got)
	}
	if st := e.SourceStatus(); st == nil || st.Kind != "chan" {
		t.Fatalf("SourceStatus=%+v mid-run", st)
	}

	clk.Store((d0 + 1) * 86400)
	for e.Stats().LastClosedDay != d0 {
		if time.Now().After(deadline) {
			t.Fatalf("LastClosedDay=%d after midnight, want %d", e.Stats().LastClosedDay, d0)
		}
		time.Sleep(time.Millisecond)
	}

	// Stop ends the run and closes the source.
	close(stop)
	select {
	case err := <-runDone:
		if err != ErrReplayStopped {
			t.Fatalf("Run: %v, want ErrReplayStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return on Stop")
	}
	if !src.closed.Load() {
		t.Fatal("Stop did not close the source")
	}
}

// TestRunTickRecordOrdering: a record already delivered when a
// wall-clock tick fires — here queued while a pause had the run parked
// in the tick branch's gate, the widest form of that window — must
// apply to its own observation day before the clock closes it. The
// buggy interleaving would close the day first and shunt the record
// onto the next day, stamping its lifecycle event a day ahead; it must
// also not close the day twice.
func TestRunTickRecordOrdering(t *testing.T) {
	const d0 = 14000
	var clk atomic.Uint32
	clk.Store(d0*86400 + 100)

	src := newChanSource()
	e := New(Config{Shards: 1})
	defer e.Close()
	ticks := make(chan time.Time)
	stop := make(chan struct{})
	runDone := make(chan error, 1)
	var mu sync.Mutex
	var closes []int
	go func() {
		runDone <- e.Run(src, &RunOptions{
			Stop:  stop,
			Now:   clk.Load,
			Ticks: ticks,
			OnDayClose: func(day int) {
				mu.Lock()
				closes = append(closes, day)
				mu.Unlock()
			},
		})
	}()

	p := bgp.MustParsePrefix("10.0.0.0/8")
	attrs := func(origin bgp.ASN) *bgp.Attrs {
		return &bgp.Attrs{
			Origin:  bgp.OriginIGP,
			ASPath:  bgp.Path{{Type: bgp.SegSequence, ASes: []bgp.ASN{65001, origin}}},
			NextHop: [4]byte{192, 0, 2, 1},
		}
	}
	var rec source.Record
	rec.Seq, rec.TS, rec.PeerAS = 1, d0*86400+100, 65001
	rec.PeerIP[3] = 1
	rec.Upd = bgp.Update{Attrs: attrs(70), NLRI: []bgp.Prefix{p}}
	src.ch <- rec

	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().Messages != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first update never ingested")
		}
		time.Sleep(time.Millisecond)
	}

	// Park the run inside the tick branch's gate.
	e.Pause()
	ticks <- time.Time{}
	for !e.Parked() {
		if time.Now().After(deadline) {
			t.Fatal("run never parked on the tick gate")
		}
		time.Sleep(time.Millisecond)
	}

	// While parked: a second record, still timestamped in d0, reaches
	// the run loop's channel (it starts the MOAS conflict), and then
	// the wall clock crosses midnight.
	rec.Seq, rec.TS, rec.PeerAS = 2, d0*86400+86399, 65002
	rec.PeerIP[3] = 2
	rec.Upd = bgp.Update{Attrs: attrs(71), NLRI: []bgp.Prefix{p}}
	src.ch <- rec
	time.Sleep(50 * time.Millisecond) // let the puller block on the handoff
	clk.Store((d0 + 1) * 86400)
	e.Resume()

	for e.Stats().Messages != 2 || e.Stats().LastClosedDay != d0 {
		if time.Now().After(deadline) {
			t.Fatalf("stats after resume: %+v", e.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	close(stop)
	select {
	case err := <-runDone:
		if err != ErrReplayStopped {
			t.Fatalf("Run: %v, want ErrReplayStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return on Stop")
	}

	// The conflict-start event is stamped with the record's own day.
	var started bool
	for _, ev := range e.Events() {
		if ev.Type == EventConflictStart {
			started = true
			if ev.Day != d0 {
				t.Fatalf("conflict started on day %d: the tick closed day %d ahead of its own record", ev.Day, d0)
			}
		}
	}
	if !started {
		t.Fatal("no conflict-start event emitted")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(closes) != 1 || closes[0] != d0 {
		t.Fatalf("day closes = %v, want exactly [%d]", closes, d0)
	}
}
