package bgp

import "fmt"

// Route binds a prefix to the path attributes a particular peer advertised
// for it. It is the unit the RIB, collector and MOAS detector exchange.
type Route struct {
	Prefix Prefix
	Attrs  *Attrs
}

// Origin returns the origin AS of the route's AS path, with ok=false when
// the path terminates in an AS_SET (such routes are excluded from MOAS
// analysis, per §III of the paper).
func (r Route) Origin() (ASN, bool) {
	if r.Attrs == nil {
		return 0, false
	}
	return r.Attrs.ASPath.Origin()
}

// Path returns the route's AS path (nil when attributes are absent).
func (r Route) Path() Path {
	if r.Attrs == nil {
		return nil
	}
	return r.Attrs.ASPath
}

// String renders a bgpdump-style one-liner.
func (r Route) String() string {
	return fmt.Sprintf("%s via [%s]", r.Prefix, r.Path())
}
