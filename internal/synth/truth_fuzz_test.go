package synth

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTruthLogDecode holds the truth-log codec to the repo's codec
// contract: arbitrary bytes never panic, and anything that decodes
// re-encodes to a byte-identical log that decodes to the same episodes.
func FuzzTruthLogDecode(f *testing.F) {
	s, err := NewStream(testConfig())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(AppendTruthLog(nil, s.Truth()))
	f.Add(AppendTruthLog(nil, nil))
	f.Add([]byte(truthMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		eps, err := DecodeTruthLog(data)
		if err != nil {
			return
		}
		blob := AppendTruthLog(nil, eps)
		back, err := DecodeTruthLog(blob)
		if err != nil {
			t.Fatalf("re-encoded log failed to decode: %v", err)
		}
		if !reflect.DeepEqual(back, eps) {
			t.Fatal("decode(encode(decode(data))) != decode(data)")
		}
		if !bytes.Equal(AppendTruthLog(nil, back), blob) {
			t.Fatal("encode not deterministic")
		}
	})
}
