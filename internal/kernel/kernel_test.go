package kernel_test

import (
	"reflect"
	"testing"

	"moas/internal/bgp"
	"moas/internal/core"
	"moas/internal/kernel"
)

var (
	p1 = bgp.MustParsePrefix("10.0.0.0/8")
	p2 = bgp.MustParsePrefix("192.168.0.0/16")
)

func apply(t *testing.T, k *kernel.Kernel, day int, p bgp.Prefix, origins []bgp.ASN, class core.Class) []kernel.Event {
	t.Helper()
	evs := k.Apply(kernel.Obs{Day: day, Prefix: p, Origins: origins, Class: class})
	// The returned slice is reused by the next Apply; copy for assertions.
	return append([]kernel.Event(nil), evs...)
}

// TestApplyLifecycle drives one prefix through a full start → origin
// change → class change → end cycle and checks every emitted event and
// the derived records.
func TestApplyLifecycle(t *testing.T) {
	k := kernel.New(kernel.Options{KeepLog: true})

	// Single origin: tracked, but no lifecycle.
	if evs := apply(t, k, 1, p1, []bgp.ASN{701}, 0); len(evs) != 0 {
		t.Fatalf("single-origin observation emitted %v", evs)
	}
	if k.ActiveCount() != 0 {
		t.Fatal("active conflict before a second origin appeared")
	}

	// Second origin: conflict starts.
	evs := apply(t, k, 3, p1, []bgp.ASN{701, 7018}, core.ClassDistinctPaths)
	if len(evs) != 1 || evs[0].Type != kernel.EventConflictStart {
		t.Fatalf("expected conflict-start, got %v", evs)
	}
	if got := evs[0].PrevOrigins; !reflect.DeepEqual(got, []bgp.ASN{701}) {
		t.Fatalf("start PrevOrigins = %v", got)
	}
	if evs[0].Seq != 1 {
		t.Fatalf("first event seq = %d", evs[0].Seq)
	}

	// Same observation again: no event (idempotent).
	if evs := apply(t, k, 4, p1, []bgp.ASN{701, 7018}, core.ClassDistinctPaths); len(evs) != 0 {
		t.Fatalf("repeat observation emitted %v", evs)
	}

	// Origin set changes while staying in conflict.
	evs = apply(t, k, 5, p1, []bgp.ASN{701, 7018, 8584}, core.ClassDistinctPaths)
	if len(evs) != 1 || evs[0].Type != kernel.EventOriginChange || evs[0].Seq != 2 {
		t.Fatalf("expected origin-change seq 2, got %v", evs)
	}

	// Class flips with the same origin set.
	evs = apply(t, k, 6, p1, []bgp.ASN{701, 7018, 8584}, core.ClassOrigTranAS)
	if len(evs) != 1 || evs[0].Type != kernel.EventClassChange {
		t.Fatalf("expected class-change, got %v", evs)
	}

	// Origins collapse: conflict ends.
	evs = apply(t, k, 9, p1, []bgp.ASN{701}, 0)
	if len(evs) != 1 || evs[0].Type != kernel.EventConflictEnd {
		t.Fatalf("expected conflict-end, got %v", evs)
	}
	if len(evs[0].Origins) != 0 {
		t.Fatalf("end event carries origins %v", evs[0].Origins)
	}
	if k.ActiveCount() != 0 {
		t.Fatal("still active after end")
	}

	spans := k.AppendSpans(nil)
	if len(spans) != 1 || spans[0] != (kernel.Span{Start: 3, End: 9}) {
		t.Fatalf("spans = %v, want one [3,9)", spans)
	}
	if k.EventCount() != 4 || len(k.Log()) != 4 {
		t.Fatalf("event count %d, log %d, want 4", k.EventCount(), len(k.Log()))
	}
}

// TestCloseDayRecordsActives: CloseDay must feed the registry exactly the
// active set, accumulating the paper's day-granular durations.
func TestCloseDayRecordsActives(t *testing.T) {
	k := kernel.New(kernel.Options{})
	apply(t, k, 0, p1, []bgp.ASN{1, 2}, core.ClassDistinctPaths)
	apply(t, k, 0, p2, []bgp.ASN{3, 4}, core.ClassSplitView)
	k.CloseDay(0)
	apply(t, k, 1, p2, nil, 0) // p2 dissolves before day 1 closes
	k.CloseDay(1)
	k.CloseDay(2) // quiet day: p1 still active

	c1, ok := k.Registry().Get(p1)
	if !ok || c1.DaysObserved != 3 || c1.FirstDay != 0 || c1.LastDay != 2 {
		t.Fatalf("p1 record = %+v", c1)
	}
	c2, ok := k.Registry().Get(p2)
	if !ok || c2.DaysObserved != 1 || c2.ClassDays[core.ClassSplitView] != 1 {
		t.Fatalf("p2 record = %+v", c2)
	}
	if k.Registry().OngoingAt(2) != 1 {
		t.Fatalf("ongoing at day 2 = %d", k.Registry().OngoingAt(2))
	}
}

// TestHistoryCap: per-prefix history keeps only the most recent events,
// while seq and the event counter keep counting.
func TestHistoryCap(t *testing.T) {
	k := kernel.New(kernel.Options{HistoryCap: 2})
	day := 0
	for i := 0; i < 5; i++ {
		// Alternate start/end to generate many events.
		apply(t, k, day, p1, []bgp.ASN{1, bgp.ASN(100 + i)}, core.ClassDistinctPaths)
		day++
		apply(t, k, day, p1, nil, 0)
		day++
	}
	v, ok := k.State(p1)
	if !ok {
		t.Fatal("no state after lifecycle")
	}
	if len(v.History) != 2 {
		t.Fatalf("history length %d, want cap 2", len(v.History))
	}
	if v.Seq != 10 || k.EventCount() != 10 {
		t.Fatalf("seq %d count %d, want 10", v.Seq, k.EventCount())
	}
	if v.History[1].Seq != 10 || v.History[0].Seq != 9 {
		t.Fatalf("history keeps seqs %d,%d; want 9,10", v.History[0].Seq, v.History[1].Seq)
	}
}

// TestUntrackedAbsentObservation: observing an unknown prefix as absent
// must leave no state behind, and a withdrawn prefix with no lifecycle is
// forgotten entirely.
func TestUntrackedAbsentObservation(t *testing.T) {
	k := kernel.New(kernel.Options{})
	if evs := apply(t, k, 0, p1, nil, 0); len(evs) != 0 {
		t.Fatalf("absent observation of unknown prefix emitted %v", evs)
	}
	if _, ok := k.State(p1); ok {
		t.Fatal("state created for absent observation")
	}
	// Track with one origin, then withdraw: no lifecycle, so no state.
	apply(t, k, 0, p1, []bgp.ASN{42}, 0)
	apply(t, k, 1, p1, nil, 0)
	if _, ok := k.State(p1); ok {
		t.Fatal("state survives full withdrawal without lifecycle")
	}
}

// TestScratchAliasing: the kernel must copy committed origin sets, so a
// caller-reused scratch buffer cannot corrupt state or emitted events.
func TestScratchAliasing(t *testing.T) {
	k := kernel.New(kernel.Options{KeepLog: true})
	scratch := make([]bgp.ASN, 0, 8)
	scratch = append(scratch, 1, 2)
	apply(t, k, 0, p1, scratch, core.ClassDistinctPaths)
	// Reuse the scratch for a different prefix.
	scratch = scratch[:0]
	scratch = append(scratch, 7, 9)
	apply(t, k, 0, p2, scratch, core.ClassSplitView)

	v, _ := k.State(p1)
	if !reflect.DeepEqual(v.Origins, []bgp.ASN{1, 2}) {
		t.Fatalf("p1 origins corrupted by scratch reuse: %v", v.Origins)
	}
	if ev := k.Log()[0]; !reflect.DeepEqual(ev.Origins, []bgp.ASN{1, 2}) {
		t.Fatalf("logged event corrupted by scratch reuse: %v", ev.Origins)
	}
}
