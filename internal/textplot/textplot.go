// Package textplot renders the paper's figures as ASCII charts for
// terminal output: line charts (Fig. 1, Fig. 6), log-scale scatter
// (Fig. 3) and grouped bars (Fig. 5).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Line renders series as an ASCII line chart of the given size. Multiple
// series share axes; each uses its own glyph. Labels annotate the x range.
func Line(width, height int, xLabel string, series []Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var maxY float64
	var n int
	for _, s := range series {
		for _, v := range s.Y {
			if v > maxY {
				maxY = v
			}
		}
		if len(s.Y) > n {
			n = len(s.Y)
		}
	}
	if n == 0 {
		return "(no data)\n"
	}
	if maxY == 0 {
		maxY = 1
	}
	grid := newGrid(width, height)
	for _, s := range series {
		for i, v := range s.Y {
			x := i * (width - 1) / maxInt(n-1, 1)
			y := int(math.Round(v / maxY * float64(height-1)))
			grid.set(x, height-1-y, s.Glyph)
		}
	}
	var b strings.Builder
	for row := 0; row < height; row++ {
		yVal := maxY * float64(height-1-row) / float64(height-1)
		fmt.Fprintf(&b, "%8.0f |%s\n", yVal, string(grid.cells[row]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%9s %s\n", "", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "%9s %c = %s\n", "", s.Glyph, s.Name)
	}
	return b.String()
}

// Series is one named line of a chart.
type Series struct {
	Name  string
	Glyph byte
	Y     []float64
}

// LogScatter renders (x, count) points with a log-10 y axis — the shape of
// the paper's Figure 3 (counts spanning 1..100k against durations).
func LogScatter(width, height int, xMax int, xs, counts []int, xLabel string) string {
	if len(xs) == 0 {
		return "(no data)\n"
	}
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	logMax := math.Log10(float64(maxInt(maxC, 10)))
	grid := newGrid(width, height)
	for i, x := range xs {
		if counts[i] <= 0 {
			continue
		}
		col := x * (width - 1) / maxInt(xMax, 1)
		if col >= width {
			col = width - 1
		}
		y := int(math.Round(math.Log10(float64(counts[i])) / logMax * float64(height-1)))
		grid.set(col, height-1-y, '*')
	}
	var b strings.Builder
	for row := 0; row < height; row++ {
		yVal := math.Pow(10, logMax*float64(height-1-row)/float64(height-1))
		fmt.Fprintf(&b, "%8.0f |%s\n", yVal, string(grid.cells[row]))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "%9s %s (0..%d)\n", "", xLabel, xMax)
	return b.String()
}

// Bars renders grouped horizontal bars: one row per category, one bar per
// group — the per-prefix-length, per-year layout of Figure 5.
func Bars(categories []string, groups []BarGroup, width int) string {
	if width < 10 {
		width = 10
	}
	var maxV float64
	for _, g := range groups {
		for _, v := range g.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	for ci, cat := range categories {
		for gi, g := range groups {
			n := int(math.Round(g.Values[ci] / maxV * float64(width)))
			label := ""
			if gi == 0 {
				label = cat
			}
			fmt.Fprintf(&b, "%6s %-6s |%s %0.0f\n", label, g.Name, strings.Repeat("#", n), g.Values[ci])
		}
	}
	return b.String()
}

// BarGroup is one group (e.g. a year) across all categories.
type BarGroup struct {
	Name   string
	Values []float64
}

type grid struct {
	cells [][]byte
}

func newGrid(w, h int) *grid {
	g := &grid{cells: make([][]byte, h)}
	for i := range g.cells {
		g.cells[i] = []byte(strings.Repeat(" ", w))
	}
	return g
}

func (g *grid) set(x, y int, ch byte) {
	if y >= 0 && y < len(g.cells) && x >= 0 && x < len(g.cells[y]) {
		g.cells[y][x] = ch
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
