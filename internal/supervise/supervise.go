// Package supervise contains panics so one sick goroutine cannot take
// down the whole daemon. Every scenario-owned goroutine (replay/run
// pullers, decode workers, shard workers, the auto-checkpoint loop)
// runs its work under Run or Recover, which convert a panic into a
// *PanicError carrying the goroutine's name, the panic value and a
// trimmed stack. The owning scenario then transitions to failed — the
// process never exits — and serve's restart policy decides whether to
// resurrect it from the latest checkpoint.
package supervise

import (
	"fmt"
	"runtime/debug"
)

// maxStack bounds the captured stack so a PanicError stays loggable
// and cheap to ship in Status JSON.
const maxStack = 4 << 10

// PanicError is a recovered panic promoted to an error.
type PanicError struct {
	// Name identifies the goroutine that panicked ("shard worker",
	// "source puller", "auto-checkpoint", ...).
	Name string
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack, truncated to a few KB.
	Stack string
}

// Error renders the one-line form used in Status and logs.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Name, e.Value)
}

// AsError wraps a recover() value into a *PanicError, capturing the
// current stack. Call it directly inside the deferred recover so the
// stack still shows the panic site. Returns nil for a nil value so it
// can be used unconditionally: err = supervise.AsError(name, recover()).
func AsError(name string, v any) error {
	if v == nil {
		return nil
	}
	stack := debug.Stack()
	if len(stack) > maxStack {
		stack = stack[:maxStack]
	}
	return &PanicError{Name: name, Value: v, Stack: string(stack)}
}

// Run invokes fn, converting a panic into a *PanicError return. The
// normal error path is passed through untouched.
func Run(name string, fn func() error) (err error) {
	defer func() {
		if pe := AsError(name, recover()); pe != nil {
			err = pe
		}
	}()
	return fn()
}

// Go spawns fn on its own goroutine under Run and delivers the
// outcome (nil, fn's error, or a *PanicError) to done, which must be
// non-nil.
func Go(name string, fn func() error, done func(error)) {
	go func() {
		done(Run(name, fn))
	}()
}
