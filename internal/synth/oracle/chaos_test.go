package oracle

import (
	"testing"

	"moas/internal/synth"
)

// TestOracleChaos is the robustness acceptance proof: the full serve
// stack replays a synth workload under injected ENOSPC/torn-write,
// fsync-failure and shard-panic schedules, and must (a) never die, (b)
// degrade visibly and un-degrade after the disk heals, (c) read back
// exactly the generated ground truth with zero lost episodes, and (d)
// finish a supervised restart-from-checkpoint with a final checkpoint
// byte-identical to an uninterrupted run's. (The TestOracle name prefix
// puts it in CI's synth-oracle -race job.)
func TestOracleChaos(t *testing.T) {
	cfg := oracleConfig(7, []synth.Pattern{
		synth.Anycast(8), synth.RouteLeak(8), synth.GradualHijack(6), synth.FlapStorm(4, 8, 2),
	})
	rep, err := RunChaos(cfg, ChaosOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Legs) != 4 {
		t.Fatalf("ran %d legs (%v), want 4", len(rep.Legs), rep.Legs)
	}
	if rep.Episodes == 0 || rep.CheckpointBytes == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if rep.Restarts != 1 {
		t.Fatalf("saw %d supervised restarts, want 1", rep.Restarts)
	}
	if rep.Injected == 0 {
		t.Fatal("no faults injected; the harness proved nothing")
	}
	t.Logf("%d episodes, checkpoint %d bytes, %d faults injected, %d restart across %v",
		rep.Episodes, rep.CheckpointBytes, rep.Injected, rep.Restarts, rep.Legs)
}
