package serve

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"moas/internal/collector"
	"moas/internal/scenario"
	"moas/internal/stream"
)

// Scenario source kinds.
const (
	// SourceSynth builds a synthetic scenario (internal/scenario) at the
	// configured scale and streams its derived update archive.
	SourceSynth = "synth"
	// SourceMRT replays an MRT BGP4MP file from disk; the calendar is
	// derived from the file's own record timestamps.
	SourceMRT = "mrt"
)

// ScenarioConfig is the POST /scenarios request body: what to replay and
// how. Zero values mean defaults.
type ScenarioConfig struct {
	// ID names the scenario in every /scenarios/{id}/... path. Optional;
	// defaults to the scale (synth) or the file's base name (mrt), with a
	// numeric suffix on collision. Letters, digits, ".", "_", "-" only.
	ID string `json:"id,omitempty"`
	// Source is "synth" (default) or "mrt".
	Source string `json:"source,omitempty"`
	// Scale selects the synthesized scenario: "small" (two months) or
	// "full" (the paper's 1279 days). Synth only; default "small".
	Scale string `json:"scale,omitempty"`
	// Path is the MRT BGP4MP file to replay. MRT only; must exist.
	Path string `json:"path,omitempty"`
	// Shards is the engine's worker count (0 = GOMAXPROCS).
	Shards int `json:"shards,omitempty"`
	// DaysPerSec paces the replay in observed days per second (0 = as
	// fast as possible).
	DaysPerSec float64 `json:"days_per_sec,omitempty"`
	// History caps lifecycle events retained per prefix (0 = the daemon
	// default, 256; -1 = unlimited).
	History int `json:"history,omitempty"`
	// EventBuffer sizes each SSE subscriber's channel (0 = 1024). A
	// subscriber that falls this many events behind is dropped.
	EventBuffer int `json:"event_buffer,omitempty"`
	// Start, when true, starts the replay immediately after creation —
	// the create-and-start convenience moasd's boot flags use.
	Start bool `json:"start,omitempty"`
}

// isIDRune bounds the scenario-ID alphabet (IDs appear raw in URL paths).
func isIDRune(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' ||
		r == '.' || r == '_' || r == '-'
}

// normalize fills defaults and validates.
func (c *ScenarioConfig) normalize() error {
	for _, r := range c.ID {
		if !isIDRune(r) {
			return fmt.Errorf("scenario id %q: only letters, digits, '.', '_', '-' allowed", c.ID)
		}
	}
	if c.Source == "" {
		c.Source = SourceSynth
	}
	switch c.Source {
	case SourceSynth:
		if c.Scale == "" {
			c.Scale = "small"
		}
		if _, err := specFor(c.Scale); err != nil {
			return err
		}
		if c.Path != "" {
			return errors.New(`"path" is only valid with source "mrt"`)
		}
	case SourceMRT:
		if c.Path == "" {
			return errors.New(`source "mrt" requires "path"`)
		}
		if fi, err := os.Stat(c.Path); err != nil {
			return fmt.Errorf("mrt path: %w", err)
		} else if fi.IsDir() {
			return fmt.Errorf("mrt path %s is a directory", c.Path)
		}
		if c.Scale != "" {
			return errors.New(`"scale" is only valid with source "synth"`)
		}
	default:
		return fmt.Errorf("unknown source %q (want %q or %q)", c.Source, SourceSynth, SourceMRT)
	}
	if c.DaysPerSec < 0 {
		return errors.New("days_per_sec must be >= 0")
	}
	if c.History == 0 {
		c.History = 256
	} else if c.History < 0 {
		c.History = 0 // engine convention: 0 = unlimited
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 1024
	}
	return nil
}

// defaultID derives an ID when the request gave none.
func (c *ScenarioConfig) defaultID() string {
	if c.Source == SourceMRT {
		base := filepath.Base(c.Path)
		base = strings.TrimSuffix(base, ".gz")
		base = strings.TrimSuffix(base, filepath.Ext(base))
		var clean []rune
		for _, r := range base {
			if isIDRune(r) {
				clean = append(clean, r)
			}
		}
		if len(clean) > 0 {
			return string(clean)
		}
		return "mrt"
	}
	return c.Scale
}

func (c *ScenarioConfig) describeSource() string {
	if c.Source == SourceMRT {
		return "mrt file " + c.Path
	}
	return "synth scale " + c.Scale
}

// specFor maps a scale name to its scenario spec.
func specFor(scale string) (scenario.Spec, error) {
	switch scale {
	case "small":
		return scenario.TestSpec(), nil
	case "full":
		return scenario.DefaultSpec(), nil
	}
	return scenario.Spec{}, fmt.Errorf("unknown scale %q (want small or full)", scale)
}

// State is a scenario's lifecycle position.
type State int32

const (
	// StateCreated: registered, engine queryable (empty), replay not
	// started.
	StateCreated State = iota
	// StateRunning: replay in flight (including the source build, which
	// for the full synth scenario takes a while).
	StateRunning
	// StatePaused: replay parked at a record boundary; queries see a
	// settled view.
	StatePaused
	// StateDone: archive exhausted; the engine stays queryable forever.
	StateDone
	// StateFailed: the source build or replay errored; see Status().Error.
	StateFailed
)

// String names the state for JSON and logs.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StatePaused:
		return "paused"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	}
	return "unknown"
}

// Scenario is one hosted replay: an engine, its event hub, and the replay
// goroutine's controls. All methods are safe for concurrent use.
type Scenario struct {
	cfg  ScenarioConfig
	eng  *stream.Engine
	hub  *Hub
	api  http.Handler // stream.NewAPI(eng), mounted under /scenarios/{id}/
	logf func(format string, args ...any)

	totalDays  atomic.Int64 // 0 until the source is open and counted
	closedDays atomic.Int64

	mu      sync.Mutex
	state   State
	err     error
	stop    chan struct{}
	stopped bool
	done    chan struct{} // closed when the replay goroutine exits
}

func newScenario(cfg ScenarioConfig, logf func(string, ...any)) *Scenario {
	hub := NewHub()
	eng := stream.New(stream.Config{
		Shards:       cfg.Shards,
		HistoryLimit: cfg.History,
		// The daemon bounds memory: the global event log is off; event
		// consumers subscribe through the hub instead.
		DisableEventLog: true,
		OnEvent:         hub.Publish,
	})
	return &Scenario{
		cfg:  cfg,
		eng:  eng,
		hub:  hub,
		api:  stream.NewAPI(eng),
		logf: logf,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// ID returns the scenario's registry key.
func (s *Scenario) ID() string { return s.cfg.ID }

// Engine exposes the live engine (queries only; the replay goroutine owns
// the feed side).
func (s *Scenario) Engine() *stream.Engine { return s.eng }

// Hub exposes the scenario's event fan-out.
func (s *Scenario) Hub() *Hub { return s.hub }

// API is the scenario's query handler (conflicts/prefix/as/stats/healthz),
// expecting paths with the /scenarios/{id} prefix already stripped.
func (s *Scenario) API() http.Handler { return s.api }

// Start launches the replay goroutine. Only valid in state created.
func (s *Scenario) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateCreated {
		return fmt.Errorf("scenario %s is %s, not %s", s.ID(), s.state, StateCreated)
	}
	s.state = StateRunning
	go s.run()
	return nil
}

// Pause parks the replay at its next record boundary. Only valid in state
// running. The engine settles (all shards drained) before parking, so a
// paused scenario serves a stable view.
func (s *Scenario) Pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateRunning {
		return fmt.Errorf("scenario %s is %s, not %s", s.ID(), s.state, StateRunning)
	}
	s.eng.Pause()
	s.state = StatePaused
	s.logf("scenario %s: paused", s.ID())
	return nil
}

// Resume releases a paused replay.
func (s *Scenario) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StatePaused {
		return fmt.Errorf("scenario %s is %s, not %s", s.ID(), s.state, StatePaused)
	}
	s.eng.Resume()
	s.state = StateRunning
	s.logf("scenario %s: resumed", s.ID())
	return nil
}

// shutdown aborts any in-flight replay (waking a paused one), closes the
// hub so SSE handlers end, and waits for the replay goroutine to exit.
// Called by Registry.Delete.
func (s *Scenario) shutdown() {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stop)
	}
	started := s.state != StateCreated
	s.eng.Resume()
	s.mu.Unlock()
	s.hub.Close()
	if started {
		<-s.done // run() closes the engine on its way out
	} else {
		s.eng.Close() // stop the shard workers of a never-started engine
	}
}

// run is the replay goroutine: open the source, stream it through the
// engine, record the terminal state.
func (s *Scenario) run() {
	defer close(s.done)
	start := time.Now()
	err := s.replay()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng.Close()
	switch {
	case err == stream.ErrReplayStopped:
		// Deleted mid-replay; the scenario is already out of the registry.
	case err != nil:
		s.state, s.err = StateFailed, err
		s.logf("scenario %s: failed: %v", s.ID(), err)
	default:
		s.state = StateDone
		st := s.eng.Stats()
		s.logf("scenario %s: replay complete in %s: %d updates, %d conflicts ever, %d still active",
			s.ID(), time.Since(start).Round(time.Millisecond),
			st.Messages, st.TotalConflicts, st.ActiveConflicts)
	}
}

// replay opens the configured source and feeds it through the engine.
func (s *Scenario) replay() error {
	var src io.ReadCloser
	var cal stream.Calendar
	switch s.cfg.Source {
	case SourceSynth:
		spec, err := specFor(s.cfg.Scale)
		if err != nil {
			return err
		}
		sc, err := scenario.Build(spec)
		if err != nil {
			return fmt.Errorf("build scenario: %w", err)
		}
		// An io.Pipe keeps memory flat: the archive is generated day by
		// day and never materializes, even at full scale.
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(collector.WriteUpdateArchive(pw, sc))
		}()
		src, cal = pr, stream.ScenarioCalendar(sc)
	case SourceMRT:
		f, err := collector.OpenUpdateArchive(s.cfg.Path)
		if err != nil {
			return err
		}
		c, err := stream.ArchiveCalendar(f)
		f.Close()
		if err != nil {
			return err
		}
		f, err = collector.OpenUpdateArchive(s.cfg.Path)
		if err != nil {
			return err
		}
		src, cal = f, c
	default:
		return fmt.Errorf("unknown source %q", s.cfg.Source)
	}
	// Closing the source on every exit also unblocks the synth writer
	// goroutine when a stop aborts the replay mid-pipe.
	defer src.Close()

	s.totalDays.Store(int64(len(cal.Days)))
	var interval time.Duration
	if s.cfg.DaysPerSec > 0 {
		interval = time.Duration(float64(time.Second) / s.cfg.DaysPerSec)
	}
	opts := &stream.ReplayOptions{
		Stop: s.stop,
		OnDayClose: func(day int) {
			s.closedDays.Add(1)
			if interval > 0 {
				select {
				case <-time.After(interval):
				case <-s.stop:
					// The gate aborts at the next record boundary.
				}
			}
		},
	}
	return s.eng.Replay(src, cal, opts)
}

// Status is a scenario lifecycle snapshot (the list/detail endpoints'
// payload, minus the engine stats the detail view adds).
type Status struct {
	ID         string
	Source     string
	Scale      string
	Path       string
	State      State
	Error      string
	Shards     int
	DaysPerSec float64
	TotalDays  int // 0 until the source is open
	ClosedDays int
	Events     HubStats
}

// Status snapshots the scenario.
func (s *Scenario) Status() Status {
	s.mu.Lock()
	state, err := s.state, s.err
	s.mu.Unlock()
	st := Status{
		ID:         s.cfg.ID,
		Source:     s.cfg.Source,
		Scale:      s.cfg.Scale,
		Path:       s.cfg.Path,
		State:      state,
		Shards:     s.cfg.Shards,
		DaysPerSec: s.cfg.DaysPerSec,
		TotalDays:  int(s.totalDays.Load()),
		ClosedDays: int(s.closedDays.Load()),
		Events:     s.hub.Stats(),
	}
	if err != nil {
		st.Error = err.Error()
	}
	return st
}
