package bgp

import (
	"testing"
)

// wireFor encodes a minimal distinct attribute block: origin IGP, a
// two-hop path ending in origin AS a.
func wireFor(t testing.TB, a ASN) []byte {
	t.Helper()
	attrs := &Attrs{
		Origin:  OriginIGP,
		ASPath:  Path{{Type: SegSequence, ASes: []ASN{64500, a}}},
		NextHop: [4]byte{10, 0, 0, 1},
	}
	return attrs.AppendWire(nil)
}

func TestInternerHitReturnsSamePointer(t *testing.T) {
	in := NewAttrsInterner(false)
	w := wireFor(t, 65001)
	a1, err := in.Intern(w)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := in.Intern(append([]byte(nil), w...)) // equal bytes, distinct backing
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("identical wire bytes interned to different pointers")
	}
	if in.Len() != 1 || in.Epochs() != 0 {
		t.Fatalf("Len=%d Epochs=%d, want 1/0", in.Len(), in.Epochs())
	}
	if in.Bytes() <= 0 {
		t.Fatalf("Bytes=%d, want > 0", in.Bytes())
	}
}

// TestInternerCapPlateaus is the continuous-operation claim: with a cap
// set, an endless stream of distinct attribute blocks keeps the table
// and its byte accounting bounded (epoch rebuilds) instead of growing
// monotonically, and interning stays correct across rebuilds.
func TestInternerCapPlateaus(t *testing.T) {
	const cap = 64
	in := NewAttrsInterner(false)
	in.SetCap(cap)

	var maxLen int
	var maxBytes int64
	var firstFull int64 // bytes when the first epoch reached the cap
	for i := 0; i < 100*cap; i++ {
		w := wireFor(t, ASN(1000+i))
		a, err := in.Intern(w)
		if err != nil {
			t.Fatal(err)
		}
		// A fresh commit must be immediately re-internable to the same
		// pointer (same epoch).
		b, err := in.Intern(w)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("block %d: re-intern within epoch returned a different pointer", i)
		}
		if in.Len() > maxLen {
			maxLen = in.Len()
		}
		if v := in.Bytes(); v > maxBytes {
			maxBytes = v
		}
		if firstFull == 0 && in.Len() == cap {
			firstFull = in.Bytes()
		}
	}
	if maxLen > cap {
		t.Fatalf("table grew to %d distinct blocks, cap %d", maxLen, cap)
	}
	if in.Epochs() < 90 {
		t.Fatalf("Epochs=%d, want >= 90 for 100x cap distinct blocks", in.Epochs())
	}
	if firstFull == 0 {
		t.Fatal("cap never reached")
	}
	if maxBytes > firstFull {
		t.Fatalf("bytes kept growing past the first full epoch: max %d > first-full %d", maxBytes, firstFull)
	}
}

func TestInternerNoCapGrowsAndCounts(t *testing.T) {
	in := NewAttrsInterner(false)
	for i := 0; i < 200; i++ {
		if _, err := in.Intern(wireFor(t, ASN(2000+i))); err != nil {
			t.Fatal(err)
		}
	}
	if in.Len() != 200 {
		t.Fatalf("Len=%d, want 200", in.Len())
	}
	if in.Epochs() != 0 {
		t.Fatalf("Epochs=%d, want 0 without a cap", in.Epochs())
	}
}

func TestInternerDecodeMatchesDirect(t *testing.T) {
	in := NewAttrsInterner(false)
	in.SetCap(4)
	for i := 0; i < 32; i++ {
		w := wireFor(t, ASN(3000+i))
		got, err := in.Intern(w)
		if err != nil {
			t.Fatal(err)
		}
		var want Attrs
		if err := want.DecodeAttrs(w); err != nil {
			t.Fatal(err)
		}
		if !got.Equal(&want) {
			t.Fatalf("block %d: interned attrs %+v differ from direct decode %+v", i, got, &want)
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	in := NewAttrsInterner(false)
	w := wireFor(b, 65001)
	if _, err := in.Intern(w); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.Intern(w); err != nil {
			b.Fatal(err)
		}
	}
}
