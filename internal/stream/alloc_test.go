package stream

import (
	"bytes"
	"testing"

	"moas/internal/bgp"
	"moas/internal/mrt"
)

// allocGateArchive builds a small BGP4MP archive whose replay is pure
// steady-state churn once warmed: a fixed peer/prefix/attrs population
// re-announced identically (upsert no-ops on the interned pointer), plus
// withdraw/re-announce flap (node free-list and kernel state recycling),
// with no origin-set or class transitions left after the first pass.
func allocGateArchive(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	write := func(peerAS bgp.ASN, u *bgp.Update) {
		msg := &mrt.BGP4MPMessage{
			PeerAS:  peerAS,
			LocalAS: 65000,
			Family:  bgp.FamilyIPv4,
			Data:    u.AppendWire(nil),
		}
		msg.PeerIP[15] = byte(peerAS)
		if err := w.WriteBGP4MPMessage(1000, msg); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 64; i++ {
			peer := bgp.ASN(64000 + i%4)
			p := bgp.PrefixFromUint32(uint32(10<<24|i<<8), 24)
			u := &bgp.Update{
				NLRI:  []bgp.Prefix{p},
				Attrs: &bgp.Attrs{ASPath: bgp.Seq(peer, 1239, bgp.ASN(64500+i%8))},
			}
			if i%8 == 3 {
				// Flap a slice of the table: withdraw, then the identical
				// re-announcement in the same message stream.
				write(peer, &bgp.Update{Withdrawn: []bgp.Prefix{p}})
			}
			write(peer, u)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSteadyStateDecodeDispatchZeroAlloc is the zero-alloc ingest
// regression gate: once the interner, decode-batch slots, dispatch
// buffers and kernel state are warm, running the full decode+dispatch
// path over the archive — MRT read, BGP4MP borrow-decode, UPDATE decode
// through the interner, per-op shard routing — must perform exactly zero
// allocations per pass, hence 0 allocs/update. Both decode paths are
// gated: the serial (workers=1) reader-decoder and the parallel path's
// frame-then-decode pair, the per-worker work one pipeline worker
// performs on a warm batch. Shard flush/apply is kept out of the
// measured function (worker timing would make the measurement
// nondeterministic); its steady state is pinned at 0 allocs/op separately
// by BenchmarkShardReassess and the pool-recycling test below.
func TestSteadyStateDecodeDispatchZeroAlloc(t *testing.T) {
	archive := allocGateArchive(t)

	dispatch := func(t *testing.T, e *Engine, b *decBatch) {
		for i := range b.recs {
			rec := &b.recs[i]
			if rec.err != nil {
				t.Fatal(rec.err)
			}
			if rec.hasUpd {
				e.ApplyUpdate(0, rec.peer, &rec.upd)
			}
		}
	}
	drain := func(e *Engine) {
		for i := range e.pend {
			e.pend[i] = e.pend[i][:0]
		}
	}
	gate := func(t *testing.T, e *Engine, pass func()) {
		t.Helper()
		// Warm: interner misses, slot and pend capacity growth.
		pass()
		drain(e)
		if e.DistinctAttrs() == 0 {
			t.Fatal("gate archive interned no attrs — not exercising the decode path")
		}
		if avg := testing.AllocsPerRun(10, func() { pass(); drain(e) }); avg != 0 {
			t.Fatalf("steady-state decode+dispatch: %.2f allocs per pass, want 0", avg)
		}
	}

	t.Run("serial", func(t *testing.T) {
		// BatchSize beyond the archive's op count: ops accumulate in pend
		// and are reset between passes, so no flush lands mid-measurement.
		e := New(Config{Shards: 4, BatchSize: 1 << 20})
		defer e.Close()
		br := bytes.NewReader(archive)
		mr := mrt.NewReader(br)
		d := &decoder{mr: mr, recDecoder: recDecoder{in: e.interner}}
		b := newDecBatch()
		gate(t, e, func() {
			br.Reset(archive)
			mr.Reset(br)
			for {
				terminal := d.fill(b)
				dispatch(t, e, b)
				if terminal {
					return
				}
			}
		})
	})

	t.Run("worker", func(t *testing.T) {
		e := New(Config{Shards: 4, BatchSize: 1 << 20})
		defer e.Close()
		br := bytes.NewReader(archive)
		fr := mrt.NewFramer(br)
		f := &framer{fr: fr}
		w := &decodeWorker{recDecoder{in: e.interner}}
		b := newDecBatch()
		gate(t, e, func() {
			br.Reset(archive)
			fr.Reset(br)
			for {
				terminal := f.fill(b)
				w.decode(b)
				dispatch(t, e, b)
				if terminal {
					return
				}
			}
		})
	})
}

// TestFlushShardRecyclesBatches closes the dispatch loop the alloc gate
// leaves out: op slices flushed to a shard must come back through the
// engine pool once the worker has drained them, so sustained replay does
// not allocate a fresh batch per flush.
func TestFlushShardRecyclesBatches(t *testing.T) {
	e := New(Config{Shards: 1, BatchSize: 8})
	defer e.Close()
	p := bgp.MustParsePrefix("10.0.0.0/8")
	peer := PeerKey{IP: [16]byte{1}, AS: 701}
	attrs := &bgp.Attrs{ASPath: bgp.Seq(701, 9)}
	for i := 0; i < 64; i++ {
		e.ApplyUpdate(0, peer, &bgp.Update{NLRI: []bgp.Prefix{p}, Attrs: attrs})
	}
	e.Sync() // every flushed batch has been applied and recycled
	if len(e.opFree) == 0 {
		t.Fatal("no op slices recycled into the engine pool after flushes")
	}
}
