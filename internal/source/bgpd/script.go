package bgpd

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"moas/internal/bgp"
)

// ScriptedPeer is a test harness: the active side of a BGP session,
// driven line-by-line by a test instead of a routing table. It dials a
// Speaker, completes the OPEN exchange, and then sends whatever the
// script says — well-formed updates, raw bytes, silence past the hold
// timer, or an abrupt TCP reset — so session semantics are provable
// without a real daemon or network. Exported (not _test.go) because
// stream and serve integration tests drive their speakers with it.
type ScriptedPeer struct {
	conn net.Conn
	br   *bufio.Reader
	buf  [maxFrame]byte
}

// DialScripted connects to addr and completes the handshake: send OPEN
// (version 4, as, holdTime), await the speaker's OPEN and KEEPALIVE,
// answer with KEEPALIVE. The session is Established on return.
func DialScripted(addr string, as bgp.ASN, holdTime uint16) (*ScriptedPeer, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	p := &ScriptedPeer{conn: conn, br: bufio.NewReader(conn)}
	open := &bgp.Open{Version: 4, AS: as, HoldTime: holdTime, BGPID: [4]byte{192, 0, 2, 99}}
	if err := p.SendRaw(open.AppendWire(nil)); err != nil {
		conn.Close()
		return nil, err
	}
	// Speaker answers OPEN then KEEPALIVE.
	for _, want := range []byte{bgp.MsgOpen, bgp.MsgKeepalive} {
		frame, err := p.ReadMessage()
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("bgpd: scripted handshake: %w", err)
		}
		msgType, _, err := bgp.MessageBody(frame)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if msgType != want {
			conn.Close()
			return nil, fmt.Errorf("bgpd: scripted handshake: got message type %d, want %d", msgType, want)
		}
	}
	if err := p.SendRaw(bgp.AppendKeepalive(nil)); err != nil {
		conn.Close()
		return nil, err
	}
	return p, nil
}

// SendUpdate sends one UPDATE message.
func (p *ScriptedPeer) SendUpdate(u *bgp.Update) error { return p.SendRaw(u.AppendWire(nil)) }

// SendKeepalive sends a KEEPALIVE (hold-timer refresh).
func (p *ScriptedPeer) SendKeepalive() error { return p.SendRaw(bgp.AppendKeepalive(nil)) }

// SendNotification sends a NOTIFICATION; real peers follow it with a
// close, which the caller does via Close.
func (p *ScriptedPeer) SendNotification(code, sub uint8) error {
	return p.SendRaw((&bgp.Notification{Code: code, Subcode: sub}).AppendWire(nil))
}

// SendRaw writes bytes verbatim — the hook for malformed-input scripts.
func (p *ScriptedPeer) SendRaw(b []byte) error {
	p.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := p.conn.Write(b)
	return err
}

// ReadMessage reads one framed message from the speaker (keepalives,
// notifications). The returned slice is valid until the next call.
func (p *ScriptedPeer) ReadMessage() ([]byte, error) {
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	return readFrame(p.br, p.buf[:])
}

// ReadNotification reads messages until a NOTIFICATION arrives,
// skipping keepalives, and returns its code and subcode.
func (p *ScriptedPeer) ReadNotification() (code, sub uint8, err error) {
	for {
		frame, err := p.ReadMessage()
		if err != nil {
			return 0, 0, err
		}
		msgType, body, err := bgp.MessageBody(frame)
		if err != nil {
			return 0, 0, err
		}
		if msgType == bgp.MsgKeepalive {
			continue
		}
		if msgType != bgp.MsgNotification || len(body) < 2 {
			return 0, 0, fmt.Errorf("bgpd: expected NOTIFICATION, got type %d", msgType)
		}
		return body[0], body[1], nil
	}
}

// Close drops the TCP connection without ceremony (a crash, not a
// graceful cease).
func (p *ScriptedPeer) Close() error { return p.conn.Close() }
