// Package rib implements the routing-table substrate: a path-compressed
// binary trie keyed by prefix, per-peer Adj-RIB-In tables, the BGP-4
// decision process, and the multi-peer TableView the MOAS detector
// consumes (the stand-in for a Route Views daily snapshot).
package rib

import (
	"moas/internal/bgp"
)

// Trie is a path-compressed binary trie mapping prefixes to values of type
// V. It supports exact match, longest-prefix match, covered-subtree walks
// and deletion. The zero value... is not usable; call NewTrie.
//
// All prefixes in one trie must share an address family; mixing families
// panics, which surfaces programming errors immediately.
type Trie[V any] struct {
	root   *trieNode[V]
	family bgp.Family
	size   int
}

type trieNode[V any] struct {
	prefix   bgp.Prefix
	child    [2]*trieNode[V]
	hasValue bool
	value    V
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] { return &Trie[V]{} }

// Len returns the number of stored prefixes.
func (t *Trie[V]) Len() int { return t.size }

// bitAt returns bit i (0 = most significant) of addr.
func bitAt(addr [16]byte, i uint8) byte {
	return (addr[i/8] >> (7 - i%8)) & 1
}

// commonBits returns the length of the longest common prefix of a and b,
// capped at max.
func commonBits(a, b [16]byte, max uint8) uint8 {
	var n uint8
	for i := 0; i < 16 && n < max; i++ {
		x := a[i] ^ b[i]
		if x == 0 {
			n += 8
			continue
		}
		for m := byte(0x80); m != 0 && n < max; m >>= 1 {
			if x&m != 0 {
				return n
			}
			n++
		}
		break
	}
	if n > max {
		return max
	}
	return n
}

func (t *Trie[V]) checkFamily(p bgp.Prefix) {
	if !p.IsValid() {
		panic("rib: invalid prefix")
	}
	if t.family == bgp.FamilyNone {
		t.family = p.Family()
	} else if t.family != p.Family() {
		panic("rib: mixed address families in one trie")
	}
}

// truncate returns p cut down to n bits.
func truncate(p bgp.Prefix, n uint8) bgp.Prefix {
	addr := p.Addr16()
	if p.Family() == bgp.FamilyIPv4 {
		return bgp.PrefixFrom4([4]byte(addr[:4]), n)
	}
	return bgp.PrefixFrom16(addr, n)
}

// Insert stores v under p, replacing any existing value.
func (t *Trie[V]) Insert(p bgp.Prefix, v V) {
	t.checkFamily(p)
	if t.root == nil {
		t.root = &trieNode[V]{prefix: p, hasValue: true, value: v}
		t.size++
		return
	}
	n := &t.root
	for {
		cur := *n
		cb := commonBits(cur.prefix.Addr16(), p.Addr16(), minU8(cur.prefix.Bits(), p.Bits()))
		switch {
		case cb == cur.prefix.Bits() && cb == p.Bits():
			// Same node.
			if !cur.hasValue {
				t.size++
			}
			cur.hasValue, cur.value = true, v
			return
		case cb == cur.prefix.Bits():
			// p extends below cur.
			b := bitAt(p.Addr16(), cur.prefix.Bits())
			if cur.child[b] == nil {
				cur.child[b] = &trieNode[V]{prefix: p, hasValue: true, value: v}
				t.size++
				return
			}
			n = &cur.child[b]
		case cb == p.Bits():
			// p is an ancestor of cur: insert p above.
			node := &trieNode[V]{prefix: p, hasValue: true, value: v}
			node.child[bitAt(cur.prefix.Addr16(), cb)] = cur
			*n = node
			t.size++
			return
		default:
			// Diverge: create a valueless join node at cb bits.
			join := &trieNode[V]{prefix: truncate(p, cb)}
			join.child[bitAt(cur.prefix.Addr16(), cb)] = cur
			join.child[bitAt(p.Addr16(), cb)] = &trieNode[V]{prefix: p, hasValue: true, value: v}
			*n = join
			t.size++
			return
		}
	}
}

func minU8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

// Get returns the value stored under exactly p.
func (t *Trie[V]) Get(p bgp.Prefix) (V, bool) {
	var zero V
	if t.root == nil || !p.IsValid() || p.Family() != t.family {
		return zero, false
	}
	cur := t.root
	for cur != nil {
		if cur.prefix.Bits() > p.Bits() || !cur.prefix.Covers(p) {
			return zero, false
		}
		if cur.prefix.Bits() == p.Bits() {
			if cur.hasValue {
				return cur.value, true
			}
			return zero, false
		}
		cur = cur.child[bitAt(p.Addr16(), cur.prefix.Bits())]
	}
	return zero, false
}

// LookupLPM returns the value of the longest stored prefix covering p
// (which may be a host /32 or /128) and that prefix.
func (t *Trie[V]) LookupLPM(p bgp.Prefix) (bgp.Prefix, V, bool) {
	var best *trieNode[V]
	if t.root == nil || !p.IsValid() || p.Family() != t.family {
		var zero V
		return bgp.Prefix{}, zero, false
	}
	cur := t.root
	for cur != nil {
		if cur.prefix.Bits() > p.Bits() || !cur.prefix.Covers(p) {
			break
		}
		if cur.hasValue {
			best = cur
		}
		if cur.prefix.Bits() == p.Bits() {
			break
		}
		cur = cur.child[bitAt(p.Addr16(), cur.prefix.Bits())]
	}
	if best == nil {
		var zero V
		return bgp.Prefix{}, zero, false
	}
	return best.prefix, best.value, true
}

// Delete removes p and reports whether it was present. Join nodes left
// with a single child are compressed away.
func (t *Trie[V]) Delete(p bgp.Prefix) bool {
	if t.root == nil || !p.IsValid() || p.Family() != t.family {
		return false
	}
	return t.delete(&t.root, p)
}

func (t *Trie[V]) delete(n **trieNode[V], p bgp.Prefix) bool {
	cur := *n
	if cur == nil || cur.prefix.Bits() > p.Bits() || !cur.prefix.Covers(p) {
		return false
	}
	if cur.prefix.Bits() == p.Bits() {
		if !cur.hasValue {
			return false
		}
		cur.hasValue = false
		var zero V
		cur.value = zero
		t.size--
		t.compress(n)
		return true
	}
	child := &cur.child[bitAt(p.Addr16(), cur.prefix.Bits())]
	if !t.delete(child, p) {
		return false
	}
	t.compress(n)
	return true
}

// compress removes *n if it is a valueless node with fewer than two
// children.
func (t *Trie[V]) compress(n **trieNode[V]) {
	cur := *n
	if cur == nil || cur.hasValue {
		return
	}
	switch {
	case cur.child[0] == nil && cur.child[1] == nil:
		*n = nil
	case cur.child[0] == nil:
		*n = cur.child[1]
	case cur.child[1] == nil:
		*n = cur.child[0]
	}
}

// Walk visits every stored (prefix, value) pair in canonical prefix order.
// The walk stops if fn returns false.
func (t *Trie[V]) Walk(fn func(bgp.Prefix, V) bool) {
	t.walk(t.root, fn)
}

func (t *Trie[V]) walk(n *trieNode[V], fn func(bgp.Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.hasValue && !fn(n.prefix, n.value) {
		return false
	}
	return t.walk(n.child[0], fn) && t.walk(n.child[1], fn)
}

// WalkCovered visits every stored prefix covered by p (p's subtree),
// including p itself if stored.
func (t *Trie[V]) WalkCovered(p bgp.Prefix, fn func(bgp.Prefix, V) bool) {
	if t.root == nil || !p.IsValid() || p.Family() != t.family {
		return
	}
	cur := t.root
	for cur != nil && cur.prefix.Bits() < p.Bits() {
		if !cur.prefix.Covers(p) {
			return
		}
		cur = cur.child[bitAt(p.Addr16(), cur.prefix.Bits())]
	}
	if cur != nil && p.Covers(cur.prefix) {
		t.walk(cur, fn)
	}
}

// CoveringPrefixes returns every stored prefix that covers p, shortest
// first (the chain of aggregates above p).
func (t *Trie[V]) CoveringPrefixes(p bgp.Prefix) []bgp.Prefix {
	var out []bgp.Prefix
	if t.root == nil || !p.IsValid() || p.Family() != t.family {
		return nil
	}
	cur := t.root
	for cur != nil {
		if cur.prefix.Bits() > p.Bits() || !cur.prefix.Covers(p) {
			break
		}
		if cur.hasValue {
			out = append(out, cur.prefix)
		}
		if cur.prefix.Bits() == p.Bits() {
			break
		}
		cur = cur.child[bitAt(p.Addr16(), cur.prefix.Bits())]
	}
	return out
}
