GO ?= go
# Benchmark repetitions (benchstat wants >= 5 for significance; CI uses 1
# to keep the trajectory recording cheap).
BENCH_COUNT ?= 5
BENCH_TIME ?= 1s

.PHONY: build test race bench benchall fuzz-smoke soak vet fmt docscheck ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench records the streaming perf trajectory: the replay throughput
# (with allocs/update and distinct-attrs), the update-decode old-vs-Into
# comparison, the shard-reassess hot path and the checkpoint codecs
# (JSON vs binary v1 vs binary v2 — ns/op plus encoded size via the
# bytes metric), in the standard Go benchmark text format benchstat
# consumes, written to BENCH_stream.json. Compare two recordings with:
# benchstat old.json BENCH_stream.json (CI's bench-trend job does this
# against the previous run automatically).
# (Redirect-then-cat, not tee: a pipe would let a failing benchmark run
# exit 0 through tee and upload a garbage artifact.)
bench:
	$(GO) test -run XXX -bench 'BenchmarkStreamReplay|BenchmarkSynthReplay|BenchmarkDecodeUpdate|BenchmarkShardReassess|BenchmarkCheckpointEncode' \
		-benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) ./internal/stream \
		> BENCH_stream.json || { cat BENCH_stream.json; exit 1; }
	@cat BENCH_stream.json

benchall:
	$(GO) test -bench . -run XXX -benchmem ./...

# fuzz-smoke briefly live-fuzzes the snapshot/checkpoint restore surface
# on top of the committed seed corpus (testdata/fuzz). go test -fuzz
# takes exactly one target per invocation, hence one line per target.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run XXX -fuzz FuzzSnapshotRestore -fuzztime $(FUZZTIME) ./internal/kernel
	$(GO) test -run XXX -fuzz FuzzCheckpointRestore -fuzztime $(FUZZTIME) ./internal/stream
	$(GO) test -run XXX -fuzz FuzzBGPSessionMessages -fuzztime $(FUZZTIME) ./internal/source/bgpd
	$(GO) test -run XXX -fuzz FuzzTruthLogDecode -fuzztime $(FUZZTIME) ./internal/synth

# soak runs the months-of-days synth flap-storm leak check under the race
# detector (the short version runs in every `go test ./...`).
soak:
	MOAS_SOAK=1 $(GO) test -race -run TestSynthFlapStormSoak -v ./internal/stream

vet:
	$(GO) vet ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Every internal package must carry a package comment ("// Package xyz ...")
# so the docs never lag the code silently.
docscheck:
	@missing=0; \
	for d in internal/*/; do \
		pkg=$$(basename $$d); \
		if ! grep -qs "^// Package $$pkg " $$d*.go; then \
			echo "missing package comment: internal/$$pkg"; missing=1; \
		fi; \
	done; \
	if [ $$missing -ne 0 ]; then exit 1; fi

ci: fmt vet docscheck build race
