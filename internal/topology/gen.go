package topology

import (
	"fmt"
	"math/rand"

	"moas/internal/bgp"
)

// Tier1ASNs are well-known default-free-zone AS numbers of the study era,
// used for the core clique so generated paths read like real ones.
var Tier1ASNs = []bgp.ASN{701, 1239, 3356, 7018, 2914, 3561, 209, 6453, 1299, 3549}

// GenConfig parameterizes topology generation. The zero value is not
// useful; start from DefaultGenConfig.
type GenConfig struct {
	Tier1 int // size of the core clique (≤ len(Tier1ASNs) keeps real ASNs)
	Tier2 int // national/large regional transit ASes
	Tier3 int // small regional transit ASes
	Stubs int // edge ASes providing no transit

	// MultihomedStubFrac is the fraction of stubs with two providers —
	// BGP-speaking multihoming, which does not by itself create MOAS
	// conflicts (the stub originates with its own AS via both providers).
	MultihomedStubFrac float64

	// Tier2PeerProb is the probability that any two tier-2 ASes peer.
	Tier2PeerProb float64
	// Tier3PeerProb is the probability that any two tier-3 ASes peer.
	Tier3PeerProb float64

	// RequiredStubs are AS numbers that must exist as stubs (the scenario
	// layer places incident ASes such as 8584 and 15412 here).
	RequiredStubs []bgp.ASN

	Seed int64
}

// DefaultGenConfig returns the configuration used by the paper-scale
// reproduction: a few thousand ASes, matching the 1997-2001 Internet's
// order of magnitude.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Tier1:              8,
		Tier2:              60,
		Tier3:              240,
		Stubs:              2400,
		MultihomedStubFrac: 0.25,
		Tier2PeerProb:      0.15,
		Tier3PeerProb:      0.01,
		Seed:               1,
	}
}

// Generate builds a tiered Gao-Rexford topology:
//
//   - tier-1 ASes form a full peering mesh (the default-free core);
//   - each tier-2 AS buys transit from 1-3 tier-1s, and tier-2 pairs peer
//     with probability Tier2PeerProb;
//   - each tier-3 AS buys transit from 1-3 tier-2s;
//   - each stub buys transit from one tier-2/tier-3 (two when multihomed).
//
// Generation is deterministic for a given config.
func Generate(cfg GenConfig) (*Graph, error) {
	if cfg.Tier1 < 1 || cfg.Tier1 > len(Tier1ASNs) {
		return nil, fmt.Errorf("topology: Tier1 must be 1..%d", len(Tier1ASNs))
	}
	if cfg.Tier2 < 1 || cfg.Tier3 < 0 || cfg.Stubs < 0 {
		return nil, fmt.Errorf("topology: negative or empty tier sizes")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	g := NewGraph()

	t1 := make([]bgp.ASN, cfg.Tier1)
	copy(t1, Tier1ASNs[:cfg.Tier1])
	for _, a := range t1 {
		g.AddAS(a, Tier1)
	}
	for i := 0; i < len(t1); i++ {
		for j := i + 1; j < len(t1); j++ {
			g.AddPeering(t1[i], t1[j])
		}
	}

	taken := make(map[bgp.ASN]bool)
	for _, a := range t1 {
		taken[a] = true
	}
	for _, a := range cfg.RequiredStubs {
		if taken[a] {
			return nil, fmt.Errorf("topology: required stub %v collides with the core", a)
		}
		taken[a] = true
	}
	nextASN := bgp.ASN(10000)
	alloc := func() bgp.ASN {
		for taken[nextASN] {
			nextASN++
		}
		a := nextASN
		taken[a] = true
		nextASN++
		return a
	}

	pickDistinct := func(pool []bgp.ASN, n int) []bgp.ASN {
		if n > len(pool) {
			n = len(pool)
		}
		perm := r.Perm(len(pool))
		out := make([]bgp.ASN, n)
		for i := 0; i < n; i++ {
			out[i] = pool[perm[i]]
		}
		return out
	}

	t2 := make([]bgp.ASN, cfg.Tier2)
	for i := range t2 {
		a := alloc()
		t2[i] = a
		g.AddAS(a, Tier2)
		for _, p := range pickDistinct(t1, 1+r.Intn(3)) {
			g.AddTransit(p, a)
		}
	}
	for i := 0; i < len(t2); i++ {
		for j := i + 1; j < len(t2); j++ {
			if r.Float64() < cfg.Tier2PeerProb {
				g.AddPeering(t2[i], t2[j])
			}
		}
	}

	t3 := make([]bgp.ASN, cfg.Tier3)
	for i := range t3 {
		a := alloc()
		t3[i] = a
		g.AddAS(a, Tier3)
		for _, p := range pickDistinct(t2, 1+r.Intn(3)) {
			g.AddTransit(p, a)
		}
	}
	for i := 0; i < len(t3); i++ {
		for j := i + 1; j < len(t3); j++ {
			if r.Float64() < cfg.Tier3PeerProb {
				g.AddPeering(t3[i], t3[j])
			}
		}
	}

	transit := append(append([]bgp.ASN{}, t2...), t3...)
	addStub := func(a bgp.ASN) {
		g.AddAS(a, TierStub)
		n := 1
		if r.Float64() < cfg.MultihomedStubFrac {
			n = 2
		}
		for _, p := range pickDistinct(transit, n) {
			g.AddTransit(p, a)
		}
	}
	for _, a := range cfg.RequiredStubs {
		addStub(a)
	}
	for i := 0; i < cfg.Stubs; i++ {
		addStub(alloc())
	}

	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
