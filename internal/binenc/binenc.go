// Package binenc carries the primitive wire helpers shared by the binary
// snapshot codecs (kernel snapshots, stream checkpoints, serve scenario
// checkpoints): a bounds-checked varint reader over a byte slice, frame
// (length-prefixed section) helpers, and the compact prefix encoding.
//
// Encoding composes the standard library's binary.AppendUvarint /
// AppendVarint with the Append* helpers here; decoding goes through
// Reader, which latches the first error so codecs can decode a whole
// structure and check Err once. Reader is deliberately hostile-input
// safe: every count that sizes an allocation is validated against the
// bytes actually remaining, so a fuzzed or truncated snapshot fails with
// an error instead of an OOM or a panic.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"moas/internal/bgp"
)

// ErrTruncated reports input that ended before the structure did.
var ErrTruncated = errors.New("binenc: truncated input")

// ErrCorrupt reports input that decodes to an impossible value (bad
// varint, count larger than the bytes that would carry it, bad prefix).
var ErrCorrupt = errors.New("binenc: corrupt input")

// Reader decodes varint-framed binary data from a byte slice. The first
// failure latches into Err; every subsequent read returns zero values, so
// callers may decode an entire structure and check Err once at the end.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The reader borrows b; callers must
// not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of bytes not yet consumed.
func (r *Reader) Len() int { return len(r.b) - r.off }

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint decodes one unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: uvarint overflow", ErrCorrupt))
		}
		return 0
	}
	r.off += n
	return v
}

// Varint decodes one signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		if n == 0 {
			r.fail(ErrTruncated)
		} else {
			r.fail(fmt.Errorf("%w: varint overflow", ErrCorrupt))
		}
		return 0
	}
	r.off += n
	return v
}

// Int decodes a signed varint and narrows it to int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Byte decodes one byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

// Bytes returns the next n bytes, borrowed from the input (copy before
// retaining past the input's lifetime).
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Len() < n {
		r.fail(ErrTruncated)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

// Count decodes an element count and validates it against the bytes
// remaining, assuming each element occupies at least elemMin bytes. This
// is the allocation guard: a fuzzed count of 2^50 fails here instead of
// sizing a slice.
func (r *Reader) Count(elemMin int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if elemMin < 1 {
		elemMin = 1
	}
	if v > uint64(r.Len()/elemMin) {
		r.fail(fmt.Errorf("%w: count %d exceeds remaining input", ErrCorrupt, v))
		return 0
	}
	return int(v)
}

// Frame decodes one length-prefixed section and returns a sub-Reader over
// its payload; the parent reader advances past it.
func (r *Reader) Frame() *Reader {
	n := r.Count(1)
	return NewReader(r.Bytes(n))
}

// FirstErr returns the first latched error among readers. Pass inner
// section readers before their parent: an inner error is more precise
// than the truncation the outer reader would report next.
func FirstErr(rs ...*Reader) error {
	for _, r := range rs {
		if err := r.Err(); err != nil {
			return err
		}
	}
	return nil
}

// AppendFrame appends payload to dst as a length-prefixed section.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// AppendPrefix appends the compact prefix encoding: family byte, prefix
// length byte, then the ceil(bits/8) network-address bytes.
func AppendPrefix(dst []byte, p bgp.Prefix) []byte {
	dst = append(dst, byte(p.Family()), p.Bits())
	a := p.Addr16()
	return append(dst, a[:(int(p.Bits())+7)/8]...)
}

// Prefix decodes one compact prefix.
func (r *Reader) Prefix() bgp.Prefix {
	fam := bgp.Family(r.Byte())
	bits := r.Byte()
	if r.err != nil {
		return bgp.Prefix{}
	}
	var max uint8
	switch fam {
	case bgp.FamilyIPv4:
		max = 32
	case bgp.FamilyIPv6:
		max = 128
	default:
		r.fail(fmt.Errorf("%w: prefix family %d", ErrCorrupt, fam))
		return bgp.Prefix{}
	}
	if bits > max {
		r.fail(fmt.Errorf("%w: /%d beyond %s", ErrCorrupt, bits, fam))
		return bgp.Prefix{}
	}
	var a [16]byte
	copy(a[:], r.Bytes((int(bits)+7)/8))
	if r.err != nil {
		return bgp.Prefix{}
	}
	if fam == bgp.FamilyIPv4 {
		return bgp.PrefixFrom4([4]byte(a[:4]), bits)
	}
	return bgp.PrefixFrom16(a, bits)
}
