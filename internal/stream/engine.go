package stream

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"moas/internal/analysis"
	"moas/internal/bgp"
	"moas/internal/core"
	"moas/internal/epilog"
	"moas/internal/kernel"
	"moas/internal/source"
)

// Config parameterizes an Engine.
type Config struct {
	// Shards is the number of worker goroutines the prefix space is hashed
	// across (0 = GOMAXPROCS).
	Shards int
	// BatchSize is the number of route ops buffered per shard before a
	// dispatch (0 = 256).
	BatchSize int
	// QueueDepth is each shard's channel depth in batches (0 = 8); full
	// queues exert backpressure on the ingest goroutine.
	QueueDepth int
	// DecodeWorkers is the number of parallel MRT decode workers a Replay
	// runs (0 = GOMAXPROCS). With one worker the decode stage is the
	// original serial goroutine; with more, a framing goroutine fans raw
	// record batches out to the workers and a reorder stage restores
	// archive order, so results are identical at any setting — only
	// throughput changes. Live sources (Run) decode on their own
	// goroutine and ignore this.
	DecodeWorkers int
	// HistoryLimit caps lifecycle events retained per prefix (0 = all).
	HistoryLimit int
	// MaxDistinctAttrs caps the attrs interner's table: when the number of
	// distinct interned attribute blocks reaches the cap, the interner
	// drops its table and arenas and starts a fresh epoch, so a
	// long-running live feed's canonicalization memory plateaus instead of
	// growing with every attrs block ever seen. 0 = unbounded (the replay
	// default: an archive's distinct-attrs population is finite).
	MaxDistinctAttrs int
	// DisableEventLog drops the global per-shard event record that backs
	// Events(). Long-running daemons set it so memory stays bounded by the
	// live table plus HistoryLimit; duration stats are unaffected (spans
	// are tracked incrementally, not derived from the log).
	DisableEventLog bool
	// OnEvent, when non-nil, receives every lifecycle event as it is
	// emitted. Calls come from the shard worker goroutines after the shard
	// lock is released, so a prefix's events arrive in order but events of
	// different prefixes interleave arbitrarily. The callback must be fast
	// and must not block (a blocked callback stalls that shard's worker)
	// and must not call back into the engine's feed methods. serve's SSE
	// hub is the intended consumer: it fans events out through buffered
	// per-subscriber channels and drops slow subscribers instead of
	// blocking here.
	OnEvent func(Event)
	// EpisodeLog, when non-nil, receives every episode record the shard
	// kernels emit (an open restatement per lifecycle event, a closing
	// record per conflict end). Appends happen on the shard worker
	// goroutines outside the shard lock; the eventless warm path never
	// touches the log. The log may still be unopened at New time — serve
	// binds it to its directory before the engine is reachable.
	EpisodeLog *epilog.Log
}

// Engine is the live streaming MOAS detector. Feed it with ApplyUpdate and
// CloseDay (or Replay over a BGP4MP archive); query it concurrently from
// any goroutine. The feeding side is single-goroutine, as a collector has
// one ingest stream.
type Engine struct {
	cfg    Config
	shards []*shard
	pend   [][]op // dispatcher-owned per-shard pending batches
	// opFree recycles op slices between the dispatcher and the shard
	// workers: flushShard takes a drained slice instead of allocating a
	// fresh batch per flush, so steady-state dispatch allocates nothing.
	opFree chan []op
	// interner canonicalizes decoded path-attribute blocks by wire bytes
	// for the replay decode stage; one pointer per distinct block is what
	// makes applyOne's pointer-equality fast path hit and keeps the
	// steady-state heap proportional to distinct attrs, not routes.
	interner *bgp.AttrsInterner
	wg       sync.WaitGroup
	closed   atomic.Bool // set by Close; read by API handlers

	msgs       atomic.Uint64
	ops        atomic.Uint64
	recs       atomic.Uint64 // MRT records fully consumed by Replay (checkpoint cursor)
	lastClosed atomic.Int64  // last day-close dispatched; -1 before any

	// Decode-stage observability: frames counts MRT records framed (read
	// ahead of the cursor), reorderDepth gauges the reorder buffer, and
	// dec points at the current/last replay's stage handle (see decStage).
	frames       atomic.Uint64
	reorderDepth atomic.Int64
	dec          atomic.Pointer[decStage]

	// src holds the live source a Run loop is currently draining (a
	// srcBox so the stored type is always identical); Stats and the
	// health endpoint read its Status through here.
	src atomic.Value

	// Pause gate. paused is non-nil while a pause is requested and is
	// closed (then nilled) by Resume; a replay parks on it between records.
	// parked flips true once the replay has actually settled and blocked.
	pauseMu sync.Mutex
	paused  chan struct{}
	parked  atomic.Bool

	// First unrecoverable worker failure (a panicked shard or decode
	// goroutine, contained by supervise). failedCh is closed on the
	// first recordFailure so Replay/Run loops blocked on a channel can
	// wake up and abort; the dead worker itself switches to drain mode
	// so producers never block on its queue.
	failMu   sync.Mutex
	failErr  error
	failedCh chan struct{}
}

// New starts an engine and its shard workers.
func New(cfg Config) *Engine {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 256
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	e := &Engine{
		cfg:  cfg,
		pend: make([][]op, cfg.Shards),
		// Capacity covers every batch that can be in flight at once (per
		// shard: the queue plus one being applied plus one pending), so a
		// recycled slice is always waiting once the pipeline warms up.
		opFree:   make(chan []op, cfg.Shards*(cfg.QueueDepth+2)),
		interner: bgp.NewAttrsInterner(false),
		failedCh: make(chan struct{}),
	}
	if cfg.MaxDistinctAttrs > 0 {
		e.interner.SetCap(cfg.MaxDistinctAttrs)
	}
	e.lastClosed.Store(-1)
	for i := 0; i < cfg.Shards; i++ {
		s := newShard(cfg.QueueDepth, cfg.HistoryLimit, !cfg.DisableEventLog, cfg.OnEvent, e.putOps, cfg.EpisodeLog)
		s.onFail = e.recordFailure
		e.shards = append(e.shards, s)
		e.wg.Add(1)
		go s.run(&e.wg)
	}
	return e
}

// recordFailure stores the first unrecoverable worker failure and
// wakes anything selecting on failed(). Later failures are dropped:
// the scenario is already doomed and the first cause is the one worth
// reporting.
func (e *Engine) recordFailure(err error) {
	if err == nil {
		return
	}
	e.failMu.Lock()
	if e.failErr == nil {
		e.failErr = err
		close(e.failedCh)
	}
	e.failMu.Unlock()
}

// Err returns the first contained worker failure, nil while healthy.
func (e *Engine) Err() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

// failed is closed once a worker failure has been recorded.
func (e *Engine) failed() <-chan struct{} { return e.failedCh }

// takeOps returns a recycled op slice, or a fresh one while the pool
// warms up.
func (e *Engine) takeOps() []op {
	select {
	case b := <-e.opFree:
		return b
	default:
		return make([]op, 0, e.cfg.BatchSize)
	}
}

// putOps recycles a drained op slice; called by shard workers. The pool
// is sized to always have room, but a full pool simply drops the slice.
func (e *Engine) putOps(b []op) {
	select {
	case e.opFree <- b[:0]:
	default:
	}
}

// shardFor hashes a canonical prefix onto a shard (FNV-1a over the address
// bytes and length).
func (e *Engine) shardFor(p bgp.Prefix) int {
	a := p.Addr16()
	h := uint32(2166136261)
	for _, b := range a {
		h = (h ^ uint32(b)) * 16777619
	}
	h = (h ^ uint32(p.Bits())) * 16777619
	return int(h % uint32(len(e.shards)))
}

// ApplyUpdate decomposes one peer's UPDATE message into route ops —
// withdrawals then announcements, as on the wire — and dispatches them to
// the owning shards.
func (e *Engine) ApplyUpdate(day int, peer PeerKey, u *bgp.Update) {
	e.msgs.Add(1)
	for _, p := range u.Withdrawn {
		e.dispatch(op{day: day, withdraw: true, peer: peer, prefix: p})
	}
	if u.Attrs == nil {
		return
	}
	for _, p := range u.NLRI {
		e.dispatch(op{day: day, peer: peer, prefix: p, attrs: u.Attrs})
	}
}

func (e *Engine) dispatch(o op) {
	e.ops.Add(1)
	i := e.shardFor(o.prefix)
	e.pend[i] = append(e.pend[i], o)
	if len(e.pend[i]) >= e.cfg.BatchSize {
		e.flushShard(i)
	}
}

func (e *Engine) flushShard(i int) {
	if len(e.pend[i]) == 0 {
		return
	}
	e.shards[i].ch <- batch{ops: e.pend[i]}
	e.pend[i] = e.takeOps()
}

// CloseDay flushes pending batches and sends every shard a day-close
// barrier: each records its active conflicts for the day into its registry
// slice. FIFO channels guarantee the barrier lands after all of the day's
// updates.
func (e *Engine) CloseDay(day int) {
	for i := range e.shards {
		e.flushShard(i)
	}
	for _, s := range e.shards {
		s.ch <- batch{closeDay: day}
	}
	e.lastClosed.Store(int64(day))
}

// Sync blocks until every shard has processed all previously dispatched
// work — a fence for callers that need a settled view (tests, pause
// points). Like the feed methods it belongs to the ingest goroutine.
func (e *Engine) Sync() {
	for i := range e.shards {
		e.flushShard(i)
	}
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for _, s := range e.shards {
		s.ch <- batch{sync: &wg}
	}
	wg.Wait()
}

// Pause asks the engine's replay to park at its next record boundary.
// Safe from any goroutine (serve's pause endpoint calls it while a replay
// is in flight). The replay settles all shards (Sync) before parking, so
// once it has parked, queries see a stable view; feeding resumes when
// Resume is called. Pausing an engine with no replay in flight simply
// primes the gate for the next Replay call.
func (e *Engine) Pause() {
	e.pauseMu.Lock()
	defer e.pauseMu.Unlock()
	if e.paused == nil {
		e.paused = make(chan struct{})
	}
}

// Resume releases a paused replay. Safe from any goroutine; a no-op when
// not paused.
func (e *Engine) Resume() {
	e.pauseMu.Lock()
	defer e.pauseMu.Unlock()
	if e.paused != nil {
		close(e.paused)
		e.paused = nil
	}
}

// Paused reports whether a pause has been requested. The replay may not
// have parked yet; a settled view is only guaranteed once it has.
func (e *Engine) Paused() bool {
	return e.pauseGate() != nil
}

// Parked reports whether a paused replay has actually settled and
// blocked: every shard is drained and the engine serves a stable view.
// Checkpointing a mid-replay engine requires it.
func (e *Engine) Parked() bool {
	return e.parked.Load()
}

func (e *Engine) pauseGate() chan struct{} {
	e.pauseMu.Lock()
	defer e.pauseMu.Unlock()
	return e.paused
}

// Records returns the number of MRT records fully consumed by Replay —
// the checkpoint cursor (Checkpoint.Records). The auto-checkpoint loop
// reads it as a cheap progress probe to skip writes when nothing moved.
func (e *Engine) Records() uint64 {
	return e.recs.Load()
}

// DistinctAttrs returns the number of distinct path-attribute blocks the
// replay decode stage has interned — the live measure of how repetitive
// the feed is (and of the interner's memory footprint). Safe to call
// concurrently with a replay.
func (e *Engine) DistinctAttrs() int {
	return e.interner.Len()
}

// Interner exposes the engine's attrs interner for sources that decode
// on the feed goroutine (Run's puller): sharing it is what makes a
// JSON-derived or wire-decoded attrs block land on the same canonical
// pointer a file replay produces. The interner is safe for concurrent
// use (Replay's decode workers intern through it in parallel).
func (e *Engine) Interner() *bgp.AttrsInterner {
	return e.interner
}

// Close flushes remaining work, stops the workers and waits for them to
// drain. The engine stays queryable; it only stops accepting updates.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	for i := range e.shards {
		e.flushShard(i)
	}
	for _, s := range e.shards {
		close(s.ch)
	}
	e.wg.Wait()
}

// Registry merges every shard kernel's conflict records into one
// registry — after a full archive replay it is identical to what
// driver.RunFullScan builds (the equivalence holds at the kernel level).
// Safe to call concurrently with replay, but a mid-day call sees only
// days closed so far.
func (e *Engine) Registry() *core.Registry {
	out := core.NewRegistry()
	for _, s := range e.shards {
		s.mu.RLock()
		out.Absorb(s.k.Registry())
		s.mu.RUnlock()
	}
	return out
}

// ConflictInfo is one active conflict as served by the live query API.
type ConflictInfo struct {
	Prefix  bgp.Prefix
	Origins []bgp.ASN
	Class   core.Class
	// SinceDay is when the current activation began; the registry fields
	// cover the conflict's whole lifetime through the last closed day.
	SinceDay     int
	FirstDay     int
	LastDay      int
	DaysObserved int
}

// ActiveConflicts returns the current conflict set sorted by prefix.
func (e *Engine) ActiveConflicts() []ConflictInfo {
	var out []ConflictInfo
	for _, s := range e.shards {
		s.mu.RLock()
		s.k.WalkActive(func(p bgp.Prefix, v kernel.View) bool {
			ci := ConflictInfo{
				Prefix:   p,
				Origins:  append([]bgp.ASN(nil), v.Origins...),
				Class:    v.Class,
				SinceDay: v.Since,
			}
			if c, ok := s.k.Registry().Get(p); ok {
				ci.FirstDay, ci.LastDay, ci.DaysObserved = c.FirstDay, c.LastDay, c.DaysObserved
			}
			out = append(out, ci)
			return true
		})
		s.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

// PrefixInfo is one prefix's live state and lifecycle history.
type PrefixInfo struct {
	Prefix   bgp.Prefix
	Active   bool
	Origins  []bgp.ASN
	Class    core.Class
	Routes   int // peers currently announcing the prefix
	History  []Event
	Conflict *core.Conflict // lifetime record; nil if never in conflict
}

// Prefix reports the live state of one prefix.
func (e *Engine) Prefix(p bgp.Prefix) PrefixInfo {
	s := e.shards[e.shardFor(p)]
	s.mu.RLock()
	defer s.mu.RUnlock()
	info := PrefixInfo{Prefix: p}
	if v, ok := s.k.State(p); ok {
		info.Active = v.Active
		info.Origins = append([]bgp.ASN(nil), v.Origins...)
		info.Class = v.Class
		info.History = append([]Event(nil), v.History...)
	}
	if head, ok := s.prefixes[p]; ok {
		info.Routes = s.routeCount(head)
	}
	if c, ok := s.k.Registry().Get(p); ok {
		info.Conflict = c.Clone()
	}
	return info
}

// ASInvolvement summarizes one AS's participation in conflicts.
type ASInvolvement struct {
	ASN    bgp.ASN
	Active int // current conflicts whose origin set includes the AS
	Ever   int // lifetime conflicts whose origin set ever included it
	// ActivePrefixes lists the current conflicts, sorted.
	ActivePrefixes []bgp.Prefix
}

// Involvement reports a's conflict participation — the live form of the
// paper's §VI-E spike attribution.
func (e *Engine) Involvement(a bgp.ASN) ASInvolvement {
	inv := ASInvolvement{ASN: a}
	for _, s := range e.shards {
		s.mu.RLock()
		s.k.WalkActive(func(p bgp.Prefix, v kernel.View) bool {
			if containsASN(v.Origins, a) {
				inv.Active++
				inv.ActivePrefixes = append(inv.ActivePrefixes, p)
			}
			return true
		})
		for _, c := range s.k.Registry().Conflicts() {
			if containsASN(c.OriginsEver, a) {
				inv.Ever++
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(inv.ActivePrefixes, func(i, j int) bool {
		return inv.ActivePrefixes[i].Compare(inv.ActivePrefixes[j]) < 0
	})
	return inv
}

// Stats is a point-in-time engine summary.
type Stats struct {
	Shards          int
	Messages        uint64 // UPDATE messages ingested
	Ops             uint64 // route-level operations dispatched
	LastClosedDay   int    // -1 before the first day close
	DistinctAttrs   int    // attrs blocks interned by the replay decode stage
	InternerEpochs  int    // cap-triggered interner rebuilds (0 = never capped)
	InternerBytes   int64  // approximate retained interner memory
	RouteNodes      int    // per-peer route entries retained across all shards
	KernelStates    int    // kernel state objects retained across all shards
	ActiveConflicts int
	TotalConflicts  int                  // distinct prefixes ever in conflict
	Events          int                  // lifecycle events emitted
	ByClass         [core.NumClasses]int // active conflicts per class
	// Source is the live source's connection state when a Run loop is
	// draining one; nil for replay-fed or idle engines.
	Source *source.Status
	// Lifecycle summarizes activation-span durations derived from the
	// event log (conflict-start/-end pairs), as of the last closed day.
	Lifecycle analysis.LifecycleStats
	// Decode describes the replay decode pipeline; zero-valued until the
	// engine's first Replay.
	Decode DecodeStats
}

// DecodeStats is the replay decode pipeline's observability view: where
// the next bottleneck is hiding. RingOccupancy near the ring size with a
// deep ReorderBuffer means decode is outrunning apply; occupancy near
// zero means the framer (archive I/O) is the limit.
type DecodeStats struct {
	Workers       int     // decode workers of the current/last replay
	Frames        uint64  // MRT records framed (read-ahead of the cursor)
	FramesPerSec  float64 // framing rate over the current/last replay
	RingOccupancy int     // batches somewhere between framing and apply
	ReorderBuffer int     // batches parked waiting for their sequence turn
}

// LastClosedDay returns the last day close dispatched (-1 before any) —
// the natural as-of day for rendering open episodes from the episode
// log without paying for a full Stats snapshot.
func (e *Engine) LastClosedDay() int { return int(e.lastClosed.Load()) }

// Stats snapshots the engine.
func (e *Engine) Stats() Stats {
	st := Stats{
		Shards:         len(e.shards),
		Messages:       e.msgs.Load(),
		Ops:            e.ops.Load(),
		LastClosedDay:  int(e.lastClosed.Load()),
		DistinctAttrs:  e.DistinctAttrs(),
		InternerEpochs: e.interner.Epochs(),
		InternerBytes:  e.interner.Bytes(),
		Source:         e.SourceStatus(),
	}
	for _, s := range e.shards {
		s.mu.RLock()
		st.ActiveConflicts += s.k.ActiveCount()
		st.TotalConflicts += s.k.Registry().Len()
		st.Events += s.k.EventCount()
		st.RouteNodes += len(s.nodes)
		st.KernelStates += s.k.ArenaStates()
		s.k.WalkActive(func(_ bgp.Prefix, v kernel.View) bool {
			st.ByClass[v.Class]++
			return true
		})
		s.mu.RUnlock()
	}
	st.Lifecycle = analysis.Lifecycle(e.Spans(), st.LastClosedDay)
	st.Decode = e.decodeStats()
	return st
}

// decodeStats snapshots the decode pipeline from the stage handle the
// current (or last finished) Replay published.
func (e *Engine) decodeStats() DecodeStats {
	ds := e.dec.Load()
	if ds == nil {
		return DecodeStats{}
	}
	st := DecodeStats{
		Workers:       ds.workers,
		Frames:        e.frames.Load(),
		RingOccupancy: ds.ring - len(ds.free),
		ReorderBuffer: int(e.reorderDepth.Load()),
	}
	end := time.Now()
	if ns := ds.end.Load(); ns != 0 {
		end = time.Unix(0, ns)
	}
	if sec := end.Sub(ds.start).Seconds(); sec > 0 {
		st.FramesPerSec = float64(st.Frames-ds.frames0) / sec
	}
	return st
}

// Spans returns the conflict activation spans — one per contiguous
// activation (conflict-start through conflict-end, open when no end has
// been seen). Ended spans are accumulated incrementally at event time, so
// the cost is O(spans), not O(event log); this is the event-derived
// duration dataset the /stats endpoint summarizes.
func (e *Engine) Spans() []analysis.Span {
	var out []analysis.Span
	for _, s := range e.shards {
		s.mu.RLock()
		out = s.k.AppendSpans(out)
		s.mu.RUnlock()
	}
	return out
}

// Events returns every lifecycle event emitted so far, in canonical order
// (day, prefix, per-prefix seq) — deterministic for a given input stream
// regardless of shard count, which the sharding-invariance test asserts.
// Empty when the engine runs with DisableEventLog.
func (e *Engine) Events() []Event {
	var out []Event
	for _, s := range e.shards {
		s.mu.RLock()
		out = append(out, s.k.Log()...)
		s.mu.RUnlock()
	}
	kernel.SortEvents(out)
	return out
}

func containsASN(set []bgp.ASN, a bgp.ASN) bool {
	for _, o := range set {
		if o == a {
			return true
		}
	}
	return false
}
