package stream

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"moas/internal/bgp"
)

// The golden fixtures pin the v1 checkpoint formats: a scripted engine
// checkpoint committed in both encodings plus the state summary it must
// restore to. Future codec changes that can't read these bytes — or
// read them into different state — fail here instead of silently
// orphaning every archived checkpoint. Regenerate (only after a
// deliberate, version-bumped format change) with MOAS_GEN_GOLDEN=1.
const (
	goldenJSON     = "testdata/checkpoint_v1.json"
	goldenBinary   = "testdata/checkpoint_v1.mckpt"
	goldenBinaryV2 = "testdata/checkpoint_v2.mckpt"
	goldenExpect   = "testdata/checkpoint_v1.expect.json"
)

// goldenSummary is the restored-state image the fixtures are compared
// against: the replay cursor plus the full conflict registry.
type goldenSummary struct {
	LastClosedDay   int              `json:"last_closed_day"`
	Messages        uint64           `json:"messages"`
	Ops             uint64           `json:"ops"`
	Records         uint64           `json:"records"`
	Events          int              `json:"events"`
	ActiveConflicts int              `json:"active_conflicts"`
	Conflicts       []goldenConflict `json:"conflicts"`
}

type goldenConflict struct {
	Prefix       string    `json:"prefix"`
	FirstDay     int       `json:"first_day"`
	LastDay      int       `json:"last_day"`
	DaysObserved int       `json:"days_observed"`
	OriginsEver  []bgp.ASN `json:"origins_ever"`
	ClassDays    []int     `json:"class_days"`
}

// summarize restores ck into an engine and extracts the golden image.
func summarize(t testing.TB, ck *Checkpoint) *goldenSummary {
	t.Helper()
	e, err := NewFromCheckpoint(Config{Shards: 2}, ck)
	if err != nil {
		t.Fatalf("restore golden checkpoint: %v", err)
	}
	defer e.Close()
	st := e.Stats()
	sum := &goldenSummary{
		LastClosedDay:   st.LastClosedDay,
		Messages:        st.Messages,
		Ops:             st.Ops,
		Records:         e.Records(),
		Events:          st.Events,
		ActiveConflicts: st.ActiveConflicts,
	}
	for _, c := range e.Registry().Conflicts() {
		sum.Conflicts = append(sum.Conflicts, goldenConflict{
			Prefix:       c.Prefix.String(),
			FirstDay:     c.FirstDay,
			LastDay:      c.LastDay,
			DaysObserved: c.DaysObserved,
			OriginsEver:  c.OriginsEver,
			ClassDays:    c.ClassDays[:],
		})
	}
	return sum
}

func marshalSummary(t testing.TB, sum *goldenSummary) []byte {
	t.Helper()
	blob, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(blob, '\n')
}

// TestGoldenCheckpointsRestore is the compatibility battery: the
// committed v1 fixtures (JSON and legacy binary container) and the v2
// binary fixture must all still decode — through the sniffing entry
// point — and restore to exactly the same committed state summary. All
// three fixtures image the same engine, so one expectation serves.
func TestGoldenCheckpointsRestore(t *testing.T) {
	want, err := os.ReadFile(goldenExpect)
	if err != nil {
		t.Fatalf("missing golden expectation (regenerate with MOAS_GEN_GOLDEN=1): %v", err)
	}
	for _, path := range []string{goldenJSON, goldenBinary, goldenBinaryV2} {
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden fixture (regenerate with MOAS_GEN_GOLDEN=1): %v", err)
		}
		ck, err := DecodeCheckpoint(bytes.NewReader(blob))
		if err != nil {
			t.Fatalf("%s no longer decodes: %v", path, err)
		}
		got := marshalSummary(t, summarize(t, ck))
		if !bytes.Equal(want, got) {
			t.Fatalf("%s restores to different state than committed:\nwant %s\n got %s", path, want, got)
		}
	}
}

// TestGenerateGoldenCheckpoints rewrites the fixtures from the current
// codecs; a skip unless MOAS_GEN_GOLDEN=1.
func TestGenerateGoldenCheckpoints(t *testing.T) {
	if os.Getenv("MOAS_GEN_GOLDEN") == "" {
		t.Skip("set MOAS_GEN_GOLDEN=1 to regenerate golden checkpoints")
	}
	ck := tinyCheckpoint(t)
	if err := os.MkdirAll(filepath.Dir(goldenJSON), 0o755); err != nil {
		t.Fatal(err)
	}
	var js bytes.Buffer
	if err := EncodeCheckpointJSON(&js, ck); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenJSON, js.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	bin, err := AppendCheckpointBinaryV1(nil, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenBinary, bin, 0o644); err != nil {
		t.Fatal(err)
	}
	binV2, err := AppendCheckpointBinary(nil, ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenBinaryV2, binV2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenExpect, marshalSummary(t, summarize(t, ck)), 0o644); err != nil {
		t.Fatal(err)
	}
}
