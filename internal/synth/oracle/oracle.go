// Package oracle is the differential proof harness over internal/synth:
// it runs one generated workload through every ingest path the system
// has — an independent per-update batch driver over the kernel, the
// stream engine at several shard counts, the internal/source file path
// under Engine.Run, and a mid-run kill/checkpoint/resume — and requires
// every path to match the generator's ground truth episode-for-episode
// and each other byte-for-byte at the checkpoint level. A pass means
// wire encoding, MRT decode, route tables, origin extraction,
// classification, the episode kernel, sharding, the live-run day logic
// and the checkpoint codec all agree with a plan that never went
// through any of them.
package oracle

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"time"

	"moas/internal/bgp"
	"moas/internal/core"
	"moas/internal/epilog"
	"moas/internal/kernel"
	"moas/internal/mrt"
	"moas/internal/rib"
	"moas/internal/source"
	"moas/internal/stream"
	"moas/internal/synth"
)

// Options tunes a differential run. The zero value is the standard
// proof: stream legs at 1, 4 and 8 shards, kill at mid-run.
type Options struct {
	// ShardCounts are the stream-engine leg configurations.
	ShardCounts []int
	// KillDay is how many day closes the killed leg survives before the
	// checkpoint-and-abort (default Days/2, clamped inside the run).
	KillDay int
	// EpisodeDir hosts the episode-log legs' on-disk logs (empty = a
	// temporary directory, removed when the run ends).
	EpisodeDir string
}

// Report summarizes a passing run.
type Report struct {
	ArchiveBytes    int
	Updates         uint64
	Episodes        int
	Events          int
	CheckpointBytes int
	Legs            []string
}

// Run executes the full differential proof for cfg and returns a report,
// or an error naming the first leg that diverged.
func Run(cfg synth.Config, opts Options) (*Report, error) {
	if len(opts.ShardCounts) == 0 {
		opts.ShardCounts = []int{1, 4, 8}
	}

	// Generate twice: the archive and truth must be pure functions of the
	// config before any ingest claim means anything.
	gen, err := synth.NewStream(cfg)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, gen); err != nil {
		return nil, fmt.Errorf("oracle: generate: %w", err)
	}
	archive := buf.Bytes()
	truth := gen.Truth()
	days := gen.Days()
	gen2, err := synth.NewStream(cfg)
	if err != nil {
		return nil, err
	}
	var buf2 bytes.Buffer
	if _, err := io.Copy(&buf2, gen2); err != nil {
		return nil, fmt.Errorf("oracle: regenerate: %w", err)
	}
	if !bytes.Equal(archive, buf2.Bytes()) {
		return nil, fmt.Errorf("oracle: generator not deterministic: %d vs %d bytes", len(archive), buf2.Len())
	}
	if !reflect.DeepEqual(truth, gen2.Truth()) {
		return nil, fmt.Errorf("oracle: truth log not deterministic")
	}
	// The truth log must also survive its own codec: what moasgen writes
	// to disk is what a later judge decodes.
	decoded, err := synth.DecodeTruthLog(synth.AppendTruthLog(nil, truth))
	if err != nil || (len(truth) > 0 && !reflect.DeepEqual(decoded, truth)) {
		return nil, fmt.Errorf("oracle: truth log did not round-trip its codec: %v", err)
	}

	rep := &Report{ArchiveBytes: len(archive), Episodes: len(truth)}
	cal := contiguousCalendar(days)

	// Leg 0: the independent batch driver — a plain map table and the
	// kernel, no engine code.
	batchEvents, batchReg, updates, err := runBatch(archive, days)
	if err != nil {
		return nil, err
	}
	rep.Updates = updates
	rep.Legs = append(rep.Legs, "batch")

	// Stream legs: replay at each shard count; every leg must produce the
	// same events, registry and checkpoint bytes as the first.
	var ref *legResult
	for _, n := range opts.ShardCounts {
		e := stream.New(stream.Config{Shards: n})
		if err := e.Replay(bytes.NewReader(archive), cal, nil); err != nil {
			e.Close()
			return nil, fmt.Errorf("oracle: replay %d shards: %w", n, err)
		}
		e.Close()
		leg, err := engineResult(fmt.Sprintf("stream-%dshard", n), e)
		if err != nil {
			return nil, err
		}
		if ref == nil {
			ref = leg
		} else if err := leg.diff(ref); err != nil {
			return nil, err
		}
		rep.Legs = append(rep.Legs, leg.name)
	}

	// File-source leg: the same bytes through internal/source and
	// Engine.Run's live day logic. Now is pinned to the epoch so the
	// wall-clock ticker cannot close the generator's epoch-anchored days
	// early; CloseFinalDay gives EOF the same final close replay performs.
	{
		e := stream.New(stream.Config{Shards: 4})
		src := source.NewFileReader(bytes.NewReader(archive), "synth", e.Interner())
		err := e.Run(src, &stream.RunOptions{
			CloseFinalDay: true,
			Now:           func() uint32 { return 0 },
			Tick:          time.Hour,
		})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("oracle: file-source run: %w", err)
		}
		e.Close()
		leg, err := engineResult("file-source", e)
		if err != nil {
			return nil, err
		}
		if err := leg.diff(ref); err != nil {
			return nil, err
		}
		rep.Legs = append(rep.Legs, leg.name)
	}

	killDay := opts.KillDay
	if killDay <= 0 {
		killDay = days / 2
	}
	if killDay < 1 {
		killDay = 1
	}
	if killDay > days-2 {
		killDay = days - 2
	}

	// Kill/resume leg: checkpoint mid-run, abort, restore at a different
	// shard count, finish the archive. Crash recovery must be invisible.
	{
		ck, err := checkpointAt(archive, cal, stream.Config{Shards: 2}, killDay)
		if err != nil {
			return nil, err
		}
		e, err := stream.NewFromCheckpoint(stream.Config{Shards: 3}, ck)
		if err != nil {
			return nil, fmt.Errorf("oracle: restore: %w", err)
		}
		err = e.Replay(bytes.NewReader(archive), cal, &stream.ReplayOptions{
			Resume: &stream.ReplayPosition{Records: ck.Records, DaysClosed: killDay},
		})
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("oracle: resumed replay: %w", err)
		}
		e.Close()
		leg, err := engineResult(fmt.Sprintf("kill-resume@day%d", killDay), e)
		if err != nil {
			return nil, err
		}
		if err := leg.diff(ref); err != nil {
			return nil, err
		}
		rep.Legs = append(rep.Legs, leg.name)
	}

	// Episode-log legs: what a historical time-range query reads back off
	// disk must match ground truth episode-for-episode — first for a clean
	// replay, then across a mid-archive kill where the log holds stale
	// open records and resume-era duplicates the fold must absorb.
	epiDir := opts.EpisodeDir
	if epiDir == "" {
		dir, err := os.MkdirTemp("", "moas-oracle-epilog-")
		if err != nil {
			return nil, fmt.Errorf("oracle: episode log dir: %w", err)
		}
		defer os.RemoveAll(dir)
		epiDir = dir
	}
	{
		lg, err := epilog.Open(filepath.Join(epiDir, "replay"), epilog.Options{})
		if err != nil {
			return nil, fmt.Errorf("oracle: epilog-replay open: %w", err)
		}
		e := stream.New(stream.Config{Shards: 4, EpisodeLog: lg})
		if err := e.Replay(bytes.NewReader(archive), cal, nil); err != nil {
			e.Close()
			return nil, fmt.Errorf("oracle: epilog-replay: %w", err)
		}
		e.Close()
		// The log rides along without perturbing the engine: this leg must
		// still byte-match the reference checkpoint.
		leg, err := engineResult("epilog-replay", e)
		if err != nil {
			return nil, err
		}
		if err := leg.diff(ref); err != nil {
			return nil, err
		}
		eps, err := lg.Query(epilog.Query{Class: -1, AsOf: days - 1})
		if cerr := lg.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: epilog-replay query: %w", err)
		}
		if err := diffTruth(epilogEpisodes(eps), truth); err != nil {
			return nil, fmt.Errorf("epilog-replay: %w", err)
		}
		rep.Legs = append(rep.Legs, leg.name)
	}
	{
		// Tiny segments force rotations and compactions under the kill, so
		// recovery also crosses sealed-segment and compaction boundaries.
		dir := filepath.Join(epiDir, "kill")
		lg, err := epilog.Open(dir, epilog.Options{RotateBytes: 4 << 10, CompactEvery: 2})
		if err != nil {
			return nil, fmt.Errorf("oracle: epilog-kill open: %w", err)
		}
		ck, err := checkpointAt(archive, cal, stream.Config{Shards: 2, EpisodeLog: lg}, killDay)
		if cerr := lg.Close(); err == nil && cerr != nil {
			err = fmt.Errorf("oracle: epilog-kill close: %w", cerr)
		}
		if err != nil {
			return nil, err
		}
		lg2, err := epilog.Open(dir, epilog.Options{})
		if err != nil {
			return nil, fmt.Errorf("oracle: epilog-kill reopen: %w", err)
		}
		e, err := stream.NewFromCheckpoint(stream.Config{Shards: 3, EpisodeLog: lg2}, ck)
		if err != nil {
			lg2.Close()
			return nil, fmt.Errorf("oracle: epilog-kill restore: %w", err)
		}
		err = e.Replay(bytes.NewReader(archive), cal, &stream.ReplayOptions{
			Resume: &stream.ReplayPosition{Records: ck.Records, DaysClosed: killDay},
		})
		if err != nil {
			e.Close()
			lg2.Close()
			return nil, fmt.Errorf("oracle: epilog-kill resumed replay: %w", err)
		}
		e.Close()
		eps, err := lg2.Query(epilog.Query{Class: -1, AsOf: days - 1})
		if cerr := lg2.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("oracle: epilog-kill query: %w", err)
		}
		if err := diffTruth(epilogEpisodes(eps), truth); err != nil {
			return nil, fmt.Errorf("epilog-kill-recover@day%d: %w", killDay, err)
		}
		rep.Legs = append(rep.Legs, fmt.Sprintf("epilog-kill-recover@day%d", killDay))
	}

	rep.CheckpointBytes = len(ref.ck)
	rep.Events = len(ref.events)

	// Batch and stream must agree event-for-event (day, per-prefix seq,
	// origin sets, classes) — two independent drivers over one kernel.
	if err := diffEvents("batch", batchEvents, ref.events); err != nil {
		return nil, err
	}

	// Every leg's episode view must match ground truth episode-for-episode.
	eps := episodesFromEvents(ref.events, days-1)
	if err := diffTruth(eps, truth); err != nil {
		return nil, err
	}

	// And the registries — the paper-facing aggregate — must match the
	// per-day summation of the truth log exactly, on every leg.
	expected := expectedRegistry(truth)
	if err := diffRegistry("stream", ref.reg, expected); err != nil {
		return nil, err
	}
	if err := diffRegistry("batch", batchReg.Conflicts(), expected); err != nil {
		return nil, err
	}
	return rep, nil
}

// contiguousCalendar is the synth day axis: days 0..n-1 at d*86400.
func contiguousCalendar(n int) stream.Calendar {
	cal := stream.Calendar{Days: make([]int, n), Times: make([]uint32, n)}
	for d := 0; d < n; d++ {
		cal.Days[d] = d
		cal.Times[d] = uint32(d) * 86400
	}
	return cal
}

// legResult is one ingest path's complete observable output.
type legResult struct {
	name   string
	ck     []byte
	events []stream.Event
	reg    []*core.Conflict
}

func engineResult(name string, e *stream.Engine) (*legResult, error) {
	ck, err := stream.AppendCheckpointBinary(nil, e.Checkpoint())
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: encode checkpoint: %w", name, err)
	}
	return &legResult{name: name, ck: ck, events: e.Events(), reg: e.Registry().Conflicts()}, nil
}

func (l *legResult) diff(ref *legResult) error {
	if !bytes.Equal(l.ck, ref.ck) {
		return fmt.Errorf("oracle: %s checkpoint (%d bytes) differs from %s (%d bytes)",
			l.name, len(l.ck), ref.name, len(ref.ck))
	}
	if err := diffEvents(l.name, l.events, ref.events); err != nil {
		return err
	}
	if len(l.reg) != len(ref.reg) {
		return fmt.Errorf("oracle: %s registry has %d conflicts, %s has %d",
			l.name, len(l.reg), ref.name, len(ref.reg))
	}
	for i := range l.reg {
		if a, b := conflictKey(l.reg[i]), conflictKey(ref.reg[i]); a != b {
			return fmt.Errorf("oracle: %s registry[%d] %s != %s %s", l.name, i, a, ref.name, b)
		}
	}
	return nil
}

// eventKey stringifies every field (value semantics: nil and empty origin
// sets print alike, so arena-vs-heap backing differences cannot leak in).
func eventKey(ev kernel.Event) string {
	return fmt.Sprintf("t%d d%d s%d %s o%v po%v c%d pc%d",
		ev.Type, ev.Day, ev.Seq, ev.Prefix, ev.Origins, ev.PrevOrigins, ev.Class, ev.PrevClass)
}

func diffEvents(name string, got, want []kernel.Event) error {
	if len(got) != len(want) {
		return fmt.Errorf("oracle: %s produced %d events, reference %d", name, len(got), len(want))
	}
	for i := range got {
		if a, b := eventKey(got[i]), eventKey(want[i]); a != b {
			return fmt.Errorf("oracle: %s event %d: %s != reference %s", name, i, a, b)
		}
	}
	return nil
}

func conflictKey(c *core.Conflict) string {
	return fmt.Sprintf("%s f%d l%d d%d o%v cd%v",
		c.Prefix, c.FirstDay, c.LastDay, c.DaysObserved, c.OriginsEver, c.ClassDays)
}

// runBatch is the independent driver: raw MRT decode, a plain per-peer
// map table, rib origin extraction and core classification applied per
// route-level operation — exactly the observation order the stream
// shards see, with none of their code.
func runBatch(archive []byte, days int) ([]kernel.Event, *core.Registry, uint64, error) {
	k := kernel.New(kernel.Options{KeepLog: true})
	type peerKey struct {
		ip [16]byte
		as bgp.ASN
	}
	table := make(map[bgp.Prefix]map[peerKey]*bgp.Attrs)
	var routes []rib.PeerRoute
	var origins []bgp.ASN

	assess := func(day int, p bgp.Prefix) {
		routes = routes[:0]
		for pk, at := range table[p] {
			routes = append(routes, rib.PeerRoute{PeerAS: pk.as, Route: bgp.Route{Prefix: p, Attrs: at}})
		}
		origins, _ = rib.AppendOrigins(origins, routes)
		var class core.Class
		if len(origins) >= 2 {
			class = core.ClassifyRoutes(routes)
		}
		k.Apply(kernel.Obs{Day: day, Prefix: p, Origins: origins, Class: class})
	}

	var updates uint64
	curDay := 0
	r := mrt.NewReader(bytes.NewReader(archive))
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, 0, fmt.Errorf("oracle: batch mrt decode: %w", err)
		}
		if rec.Type != mrt.TypeBGP4MP || rec.Subtype != mrt.SubtypeMessage {
			return nil, nil, 0, fmt.Errorf("oracle: batch: unexpected record %d/%d", rec.Type, rec.Subtype)
		}
		var msg mrt.BGP4MPMessage
		if err := msg.DecodeBGP4MPMessageBorrow(rec.Body); err != nil {
			return nil, nil, 0, fmt.Errorf("oracle: batch bgp4mp decode: %w", err)
		}
		typ, body, err := bgp.MessageBody(msg.Data)
		if err != nil || typ != bgp.MsgUpdate {
			return nil, nil, 0, fmt.Errorf("oracle: batch: non-update message (type %d): %v", typ, err)
		}
		upd, err := bgp.DecodeUpdateBody(body)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("oracle: batch update decode: %w", err)
		}
		updates++
		for day := int(rec.Timestamp / 86400); curDay < day; curDay++ {
			k.CloseDay(curDay)
		}
		peer := peerKey{msg.PeerIP, msg.PeerAS}
		for _, p := range upd.Withdrawn {
			m := table[p]
			if _, ok := m[peer]; !ok {
				continue // no route to withdraw: the table didn't change
			}
			delete(m, peer)
			if len(m) == 0 {
				delete(table, p)
			}
			assess(curDay, p)
		}
		if upd.Attrs != nil {
			for _, p := range upd.NLRI {
				m := table[p]
				if m == nil {
					m = make(map[peerKey]*bgp.Attrs)
					table[p] = m
				}
				m[peer] = upd.Attrs
				assess(curDay, p)
			}
		}
	}
	for ; curDay < days; curDay++ {
		k.CloseDay(curDay)
	}
	events := append([]kernel.Event(nil), k.Log()...)
	kernel.SortEvents(events)
	return events, k.Registry(), updates, nil
}

// checkpointAt replays until stopAfterDays day closes, pauses, takes a
// checkpoint and aborts — the oracle's simulated crash.
func checkpointAt(archive []byte, cal stream.Calendar, cfg stream.Config, stopAfterDays int) (*stream.Checkpoint, error) {
	e := stream.New(cfg)
	stop := make(chan struct{})
	done := make(chan error, 1)
	closed := 0
	go func() {
		done <- e.Replay(bytes.NewReader(archive), cal, &stream.ReplayOptions{
			Stop: stop,
			OnDayClose: func(day int) {
				closed++
				if closed == stopAfterDays {
					e.Pause()
				}
			},
		})
	}()
	deadline := time.Now().Add(60 * time.Second)
	for !e.Parked() {
		select {
		case err := <-done:
			return nil, fmt.Errorf("oracle: kill leg: replay ended before parking: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("oracle: kill leg: replay never parked")
		}
		time.Sleep(time.Millisecond)
	}
	ck := e.Checkpoint()
	close(stop)
	if err := <-done; err != stream.ErrReplayStopped {
		return nil, fmt.Errorf("oracle: kill leg: aborted replay returned %v", err)
	}
	e.Close()
	return ck, nil
}

// episode mirrors synth.Episode's observable fields, rebuilt from an
// engine's event log.
type episode struct {
	prefix     bgp.Prefix
	origins    []bgp.ASN
	class      core.Class
	start, end int
	open       bool
}

// epilogEpisodes converts a log query readback to the oracle's episode
// form; the log already sorts (prefix, start), the truth log's order.
func epilogEpisodes(eps []epilog.Episode) []episode {
	out := make([]episode, len(eps))
	for i := range eps {
		out[i] = episode{
			prefix:  eps[i].Prefix,
			origins: eps[i].Origins,
			class:   eps[i].Class,
			start:   eps[i].Start,
			end:     eps[i].End,
			open:    eps[i].Open,
		}
	}
	return out
}

// episodesFromEvents folds a sorted event log into conflict episodes:
// ConflictStart opens one, OriginChange/ClassChange update it (the
// episode reports its final origin set and class, as the truth log
// does), ConflictEnd on day d closes it with last active day d-1, and
// anything still open at the final day stays open through it.
func episodesFromEvents(evs []stream.Event, lastDay int) []episode {
	open := make(map[bgp.Prefix]*episode)
	var out []episode
	for i := range evs {
		ev := &evs[i]
		switch ev.Type {
		case kernel.EventConflictStart:
			open[ev.Prefix] = &episode{
				prefix:  ev.Prefix,
				origins: append([]bgp.ASN(nil), ev.Origins...),
				class:   ev.Class,
				start:   ev.Day,
			}
		case kernel.EventOriginChange:
			if ep := open[ev.Prefix]; ep != nil {
				ep.origins = append(ep.origins[:0], ev.Origins...)
				ep.class = ev.Class
			}
		case kernel.EventClassChange:
			if ep := open[ev.Prefix]; ep != nil {
				ep.class = ev.Class
			}
		case kernel.EventConflictEnd:
			if ep := open[ev.Prefix]; ep != nil {
				ep.end = ev.Day - 1
				if ep.end < ep.start {
					ep.end = ep.start
				}
				out = append(out, *ep)
				delete(open, ev.Prefix)
			}
		}
	}
	for _, ep := range open {
		ep.end, ep.open = lastDay, true
		out = append(out, *ep)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].prefix.Compare(out[j].prefix); c != 0 {
			return c < 0
		}
		return out[i].start < out[j].start
	})
	return out
}

func diffTruth(got []episode, truth []synth.Episode) error {
	if len(got) != len(truth) {
		return fmt.Errorf("oracle: engine observed %d episodes, truth has %d", len(got), len(truth))
	}
	for i := range got {
		g, w := &got[i], &truth[i]
		ok := g.prefix == w.Prefix && g.class == w.Class && g.start == w.Start &&
			g.end == w.End && g.open == w.Open && len(g.origins) == len(w.Origins)
		if ok {
			for j := range g.origins {
				if g.origins[j] != w.Origins[j] {
					ok = false
					break
				}
			}
		}
		if !ok {
			return fmt.Errorf("oracle: episode %d: engine saw %s o%v class %v [%d,%d] open=%v; truth %s o%v class %v [%d,%d] open=%v (%s)",
				i, g.prefix, g.origins, g.class, g.start, g.end, g.open,
				w.Prefix, w.Origins, w.Class, w.Start, w.End, w.Open, w.Pattern)
		}
	}
	return nil
}

// expectedRegistry derives the paper-facing aggregate straight from the
// truth log: for every episode day, the conflict was active at day close
// with the episode's origin set and class — the same accrual
// kernel.CloseDay performs, computed without any kernel.
func expectedRegistry(truth []synth.Episode) []*core.Conflict {
	type dayState struct {
		origins []bgp.ASN
		class   core.Class
	}
	perPrefix := make(map[bgp.Prefix]map[int]dayState)
	for i := range truth {
		ep := &truth[i]
		m := perPrefix[ep.Prefix]
		if m == nil {
			m = make(map[int]dayState)
			perPrefix[ep.Prefix] = m
		}
		for d := ep.Start; d <= ep.End; d++ {
			m[d] = dayState{origins: ep.Origins, class: ep.Class}
		}
	}
	out := make([]*core.Conflict, 0, len(perPrefix))
	for p, days := range perPrefix {
		c := &core.Conflict{Prefix: p, FirstDay: 1 << 30}
		for d, st := range days {
			if d < c.FirstDay {
				c.FirstDay = d
			}
			if d > c.LastDay {
				c.LastDay = d
			}
			c.DaysObserved++
			c.ClassDays[st.class]++
			for _, o := range st.origins {
				c.OriginsEver = mergeASN(c.OriginsEver, o)
			}
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Prefix.Compare(out[j].Prefix) < 0 })
	return out
}

func mergeASN(dst []bgp.ASN, o bgp.ASN) []bgp.ASN {
	i := sort.Search(len(dst), func(i int) bool { return dst[i] >= o })
	if i < len(dst) && dst[i] == o {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = o
	return dst
}

func diffRegistry(name string, got, want []*core.Conflict) error {
	if len(got) != len(want) {
		return fmt.Errorf("oracle: %s registry has %d conflicts, truth expects %d", name, len(got), len(want))
	}
	for i := range got {
		if a, b := conflictKey(got[i]), conflictKey(want[i]); a != b {
			return fmt.Errorf("oracle: %s registry[%d]: %s, truth expects %s", name, i, a, b)
		}
	}
	return nil
}
