// Package driver runs a scenario through the MOAS detection pipeline and
// collects the per-day statistics the analysis layer turns into the
// paper's tables and figures.
//
// Two drivers are provided, and both are thin adapters over the shared
// conflict-state kernel (internal/kernel) — the same state machine the
// streaming engine drives, so episode open/close, durations and classes
// have exactly one implementation. Run is the incremental multi-year
// driver: it walks the observation calendar with a cursor and assesses
// each episode exactly once (an episode's advertisement set — hence its
// origin set and classification — is constant for its lifetime, and
// non-conflicted background prefixes cannot enter conflict without an
// episode). RunFullScan materializes every day's complete multi-peer
// table and runs the paper's full-table methodology over it; a test
// proves the two produce identical registries, which is what licenses
// the fast path.
package driver

import (
	"fmt"
	"time"

	"moas/internal/bgp"
	"moas/internal/core"
	"moas/internal/kernel"
	"moas/internal/rib"
	"moas/internal/scenario"
)

// MaxPrefixBits sizes per-length accumulators (IPv4 /0../32).
const MaxPrefixBits = 33

// Config parameterizes a run.
type Config struct {
	Spec scenario.Spec

	// Watch lists ASes whose per-day conflict involvement is tracked
	// (spike attribution, §VI-E).
	Watch []bgp.ASN

	// WatchSeqs lists AS-path subsequences (e.g. 3561→15412) whose
	// per-day occurrence across conflicts is tracked.
	WatchSeqs [][2]bgp.ASN

	// Progress, when non-nil, receives coarse progress lines.
	Progress func(string)
}

// DayStats is one observed day's aggregate detection output.
type DayStats struct {
	Day  int // calendar-day index
	Date time.Time

	// Total is the number of MOAS conflicts observed (Fig. 1).
	Total int

	// ByClass counts conflicts per classification (Fig. 6).
	ByClass [core.NumClasses]int

	// ByLen counts conflicts per prefix length (Fig. 5).
	ByLen [MaxPrefixBits]int

	// Involvement[i] counts conflicts whose origin set includes Watch[i].
	Involvement []int

	// SeqHits[i] counts conflicts with WatchSeqs[i] consecutive in some
	// observed AS path.
	SeqHits []int
}

// Result is a completed run.
type Result struct {
	Scenario *scenario.Scenario
	Registry *core.Registry
	Days     []DayStats
	// FinalDay is the last observed calendar day (for ongoing counts).
	FinalDay int
}

// episodeSummary caches the per-episode facts the incremental driver
// needs; they are invariant over the episode's life.
type episodeSummary struct {
	visible  bool
	origins  []bgp.ASN
	class    core.Class
	bits     uint8
	involves []bool // aligned with Config.Watch
	seqHits  []bool // aligned with Config.WatchSeqs
}

// Run executes the incremental driver.
func Run(cfg Config) (*Result, error) {
	sc, err := scenario.Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	return RunScenario(sc, cfg)
}

// RunScenario executes the incremental driver over a pre-built scenario
// (callers reuse one scenario across experiments; builds are expensive).
// It drives the kernel with episode-granular observations: one Apply when
// a visible episode's prefix enters or changes hands, one empty Apply
// when it leaves, and a CloseDay per observed day — O(changes + actives)
// per day instead of O(table).
func RunScenario(sc *scenario.Scenario, cfg Config) (*Result, error) {
	k := kernel.New(kernel.Options{})
	res := &Result{
		Scenario: sc,
		Registry: k.Registry(),
		FinalDay: sc.FinalObservedDay(),
	}

	summaries := make(map[int]*episodeSummary)
	summarize := func(id int) *episodeSummary {
		if s, ok := summaries[id]; ok {
			return s
		}
		s := buildSummary(sc, cfg, id)
		summaries[id] = s
		return s
	}

	cursor := sc.NewCursor()
	// live maps each prefix currently tracked by the kernel to the visible
	// episode that put it there. At most one active episode holds a prefix
	// at a time (the scenario's prefix pool guarantees it), so the map is
	// also how episode departures translate to conflict-end observations.
	live := make(map[bgp.Prefix]int)
	for i, day := range sc.ObservedDays {
		active := cursor.Advance(day)
		ds := DayStats{
			Day:         day,
			Date:        sc.DayDate(day),
			Involvement: make([]int, len(cfg.Watch)),
			SeqHits:     make([]int, len(cfg.WatchSeqs)),
		}
		// Episodes that left the active set dissolve their conflicts first,
		// so a same-day successor episode on a reused prefix observes a
		// clean end→start transition.
		for p, id := range live {
			if !active[id] {
				k.Apply(kernel.Obs{Day: day, Prefix: p})
				delete(live, p)
			}
		}
		for id := range active {
			s := summarize(id)
			if !s.visible {
				continue
			}
			p := sc.Episodes[id].Prefix
			if owner, ok := live[p]; !ok || owner != id {
				k.Apply(kernel.Obs{Day: day, Prefix: p, Origins: s.origins, Class: s.class})
				live[p] = id
			}
			ds.Total++
			ds.ByClass[s.class]++
			ds.ByLen[s.bits]++
			for w := range cfg.Watch {
				if s.involves[w] {
					ds.Involvement[w]++
				}
			}
			for w := range cfg.WatchSeqs {
				if s.seqHits[w] {
					ds.SeqHits[w]++
				}
			}
		}
		k.CloseDay(day)
		res.Days = append(res.Days, ds)
		if cfg.Progress != nil && (i%200 == 0 || i == len(sc.ObservedDays)-1) {
			cfg.Progress(fmt.Sprintf("day %d/%d (%s): %d conflicts",
				i+1, len(sc.ObservedDays), ds.Date.Format("2006-01-02"), ds.Total))
		}
	}
	return res, nil
}

// buildSummary materializes one episode's routes, extracts the invariant
// facts, and lets the routes go.
func buildSummary(sc *scenario.Scenario, cfg Config, id int) *episodeSummary {
	routes := sc.EpisodeRoutesNoCache(id)
	origins, _ := rib.OriginsOf(routes)
	s := &episodeSummary{
		bits:     sc.Episodes[id].Prefix.Bits(),
		involves: make([]bool, len(cfg.Watch)),
		seqHits:  make([]bool, len(cfg.WatchSeqs)),
	}
	if len(origins) < 2 {
		return s // invisible: never a conflict at the collector
	}
	s.visible = true
	s.origins = origins
	s.class = core.ClassifyRoutes(routes)
	for w, a := range cfg.Watch {
		for _, o := range origins {
			if o == a {
				s.involves[w] = true
				break
			}
		}
	}
	for w, seq := range cfg.WatchSeqs {
		for _, pr := range routes {
			if hasSeq(pr.Route.Path(), seq) {
				s.seqHits[w] = true
				break
			}
		}
	}
	return s
}

// hasSeq reports whether the consecutive AS pair appears in the path.
func hasSeq(p bgp.Path, seq [2]bgp.ASN) bool {
	for _, seg := range p {
		if seg.Type != bgp.SegSequence {
			continue
		}
		for i := 0; i+1 < len(seg.ASes); i++ {
			if seg.ASes[i] == seq[0] && seg.ASes[i+1] == seq[1] {
				return true
			}
		}
	}
	return false
}

// RunFullScan executes the paper's methodology literally: for every
// observed day it assembles the complete multi-peer table (background,
// episodes, AS_SET aggregates) and full-scans it. It is O(table) per day —
// used for fidelity tests and archive generation, not the 1279-day run.
func RunFullScan(cfg Config) (*Result, error) {
	sc, err := scenario.Build(cfg.Spec)
	if err != nil {
		return nil, err
	}
	return RunFullScanScenario(sc, cfg)
}

// RunFullScanScenario is RunFullScan over a pre-built scenario. It is the
// batch table-scan adapter over the kernel: every day, every prefix in
// the day's table is assessed (origin set + classification) and driven
// through Apply; conflicts that vanished from the table dissolve, and
// CloseDay records the day.
func RunFullScanScenario(sc *scenario.Scenario, cfg Config) (*Result, error) {
	k := kernel.New(kernel.Options{})
	res := &Result{
		Scenario: sc,
		Registry: k.Registry(),
		FinalDay: sc.FinalObservedDay(),
	}
	type conflictObs struct {
		prefix  bgp.Prefix
		origins []bgp.ASN
		class   core.Class
	}
	var conflicts []conflictObs
	var gone []bgp.Prefix
	for _, day := range sc.ObservedDays {
		view := sc.TableViewAt(day)
		conflicts = conflicts[:0]
		view.Walk(func(p bgp.Prefix, routes []rib.PeerRoute) bool {
			origins, _ := rib.OriginsOf(routes)
			if len(origins) < 2 {
				// Not (or no longer) a conflict: don't drive it into the
				// kernel, or a full-scale scan would accumulate kernel
				// state for every background prefix ever seen. A conflict
				// that dropped below two origins is absent from `seen`
				// and dissolves in the pass below.
				return true
			}
			class := core.ClassifyRoutes(routes)
			conflicts = append(conflicts, conflictObs{prefix: p, origins: origins, class: class})
			k.Apply(kernel.Obs{Day: day, Prefix: p, Origins: origins, Class: class})
			return true
		})
		// Conflicts that dissolved or left the table get no Apply from
		// the walk; they are still active in the kernel and must end.
		gone = gone[:0]
		seen := make(map[bgp.Prefix]struct{}, len(conflicts))
		for _, c := range conflicts {
			seen[c.prefix] = struct{}{}
		}
		k.WalkActive(func(p bgp.Prefix, _ kernel.View) bool {
			if _, ok := seen[p]; !ok {
				gone = append(gone, p)
			}
			return true
		})
		for _, p := range gone {
			k.Apply(kernel.Obs{Day: day, Prefix: p})
		}
		k.CloseDay(day)

		ds := DayStats{
			Day:         day,
			Date:        sc.DayDate(day),
			Total:       len(conflicts),
			Involvement: make([]int, len(cfg.Watch)),
			SeqHits:     make([]int, len(cfg.WatchSeqs)),
		}
		for _, c := range conflicts {
			ds.ByClass[c.class]++
			ds.ByLen[c.prefix.Bits()]++
			for w, a := range cfg.Watch {
				for _, o := range c.origins {
					if o == a {
						ds.Involvement[w]++
						break
					}
				}
			}
			for w, seq := range cfg.WatchSeqs {
				for _, pr := range view.Routes(c.prefix) {
					if hasSeq(pr.Route.Path(), seq) {
						ds.SeqHits[w]++
						break
					}
				}
			}
		}
		res.Days = append(res.Days, ds)
	}
	return res, nil
}
