package kernel

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"moas/internal/bgp"
	"moas/internal/binenc"
)

// The binary snapshot format. JSON (snapshot.go) is the portable,
// inspectable form; this is the compact one that scales to full-archive
// state. Layout:
//
//	magic "MSNP" | uvarint version
//	frame: meta      — uvarint event count
//	frame: prefixes  — uvarint count, then per prefix:
//	                   prefix, origin set, class, uvarint seq,
//	                   varint since, uvarint history count + events
//	frame: conflicts — uvarint count, then per conflict:
//	                   prefix, varint first/last/daysObserved,
//	                   origin set, uvarint class count + varint days
//	frame: spans     — uvarint count, then varint start, varint end
//	frame: log       — uvarint count + events
//
// where a prefix is binenc.AppendPrefix's compact form, an origin set is
// a uvarint count followed by uvarint ASNs, and an event is: type byte,
// varint day, uvarint seq, prefix, origin set, previous origin set,
// class byte, previous class byte. Every section is length-prefixed
// (binenc.AppendFrame) and every count is validated against the bytes
// remaining, so truncated or fuzzed input fails cleanly.

// snapshotMagic introduces a binary kernel snapshot. The first byte can
// never open a JSON document, which is what makes restore-side content
// sniffing (DecodeSnapshotAuto) unambiguous.
var snapshotMagic = []byte("MSNP")

func appendASNs(dst []byte, asns []bgp.ASN) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(asns)))
	for _, a := range asns {
		dst = binary.AppendUvarint(dst, uint64(a))
	}
	return dst
}

func readASNs(r *binenc.Reader) []bgp.ASN {
	n := r.Count(1)
	if n == 0 {
		return nil
	}
	out := make([]bgp.ASN, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, bgp.ASN(r.Uvarint()))
	}
	return out
}

func appendEventSnap(dst []byte, ev *EventSnap) ([]byte, error) {
	p, err := bgp.ParsePrefix(ev.Prefix)
	if err != nil {
		return nil, fmt.Errorf("kernel: encode event prefix %q: %w", ev.Prefix, err)
	}
	dst = append(dst, ev.Type)
	dst = binary.AppendVarint(dst, int64(ev.Day))
	dst = binary.AppendUvarint(dst, ev.Seq)
	dst = binenc.AppendPrefix(dst, p)
	dst = appendASNs(dst, ev.Origins)
	dst = appendASNs(dst, ev.PrevOrigins)
	dst = append(dst, ev.Class, ev.PrevClass)
	return dst, nil
}

func readEventSnap(r *binenc.Reader) EventSnap {
	ev := EventSnap{Type: r.Byte(), Day: r.Int(), Seq: r.Uvarint()}
	ev.Prefix = r.Prefix().String()
	ev.Origins = readASNs(r)
	ev.PrevOrigins = readASNs(r)
	ev.Class = r.Byte()
	ev.PrevClass = r.Byte()
	return ev
}

func appendEventSnaps(dst []byte, evs []EventSnap) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(evs)))
	var err error
	for i := range evs {
		if dst, err = appendEventSnap(dst, &evs[i]); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

func readEventSnaps(r *binenc.Reader) []EventSnap {
	// An event is at least 9 bytes: type, day, seq, a 2-byte /0 prefix,
	// two empty origin sets, two classes.
	n := r.Count(9)
	if n == 0 {
		return nil
	}
	out := make([]EventSnap, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, readEventSnap(r))
	}
	return out
}

// snapshotSizeHint estimates the encoded size so the encoder's buffer
// grows once instead of doubling its way up (at full-scan scale the
// growth copies and the GC pressure they cause dominate the encode).
func snapshotSizeHint(s *Snapshot) int {
	const evBytes = 56 // generous per-event estimate
	n := 64 + len(s.Conflicts)*56 + len(s.ClosedSpans)*8 + len(s.Log)*evBytes
	for i := range s.Prefixes {
		n += 48 + len(s.Prefixes[i].History)*evBytes
	}
	return n
}

// AppendSnapshotBinary appends s's binary encoding to dst. It fails only
// on a snapshot whose prefix strings do not parse (which Snapshot never
// produces).
func AppendSnapshotBinary(dst []byte, s *Snapshot) ([]byte, error) {
	if dst == nil {
		dst = make([]byte, 0, snapshotSizeHint(s))
	}
	dst = append(dst, snapshotMagic...)
	dst = binary.AppendUvarint(dst, uint64(s.Version))

	meta := binary.AppendUvarint(nil, uint64(s.Events))
	dst = binenc.AppendFrame(dst, meta)

	var err error
	// The section scratch is sized for the biggest section up front, so
	// neither it nor dst pays doubling-growth copies mid-encode.
	sec := make([]byte, 0, snapshotSizeHint(s))
	sec = binary.AppendUvarint(sec, uint64(len(s.Prefixes)))
	for i := range s.Prefixes {
		ps := &s.Prefixes[i]
		p, perr := bgp.ParsePrefix(ps.Prefix)
		if perr != nil {
			return nil, fmt.Errorf("kernel: encode prefix %q: %w", ps.Prefix, perr)
		}
		sec = binenc.AppendPrefix(sec, p)
		sec = appendASNs(sec, ps.Origins)
		sec = append(sec, ps.Class)
		sec = binary.AppendUvarint(sec, ps.Seq)
		sec = binary.AppendVarint(sec, int64(ps.Since))
		if sec, err = appendEventSnaps(sec, ps.History); err != nil {
			return nil, err
		}
	}
	dst = binenc.AppendFrame(dst, sec)

	sec = binary.AppendUvarint(sec[:0], uint64(len(s.Conflicts)))
	for i := range s.Conflicts {
		cs := &s.Conflicts[i]
		p, perr := bgp.ParsePrefix(cs.Prefix)
		if perr != nil {
			return nil, fmt.Errorf("kernel: encode conflict prefix %q: %w", cs.Prefix, perr)
		}
		sec = binenc.AppendPrefix(sec, p)
		sec = binary.AppendVarint(sec, int64(cs.FirstDay))
		sec = binary.AppendVarint(sec, int64(cs.LastDay))
		sec = binary.AppendVarint(sec, int64(cs.DaysObserved))
		sec = appendASNs(sec, cs.OriginsEver)
		sec = binary.AppendUvarint(sec, uint64(len(cs.ClassDays)))
		for _, d := range cs.ClassDays {
			sec = binary.AppendVarint(sec, int64(d))
		}
	}
	dst = binenc.AppendFrame(dst, sec)

	sec = binary.AppendUvarint(sec[:0], uint64(len(s.ClosedSpans)))
	for _, sp := range s.ClosedSpans {
		sec = binary.AppendVarint(sec, int64(sp.Start))
		sec = binary.AppendVarint(sec, int64(sp.End))
	}
	dst = binenc.AppendFrame(dst, sec)

	if sec, err = appendEventSnaps(sec[:0], s.Log); err != nil {
		return nil, err
	}
	dst = binenc.AppendFrame(dst, sec)
	return dst, nil
}

// EncodeSnapshotBinary writes the snapshot in the binary format.
func EncodeSnapshotBinary(w io.Writer, s *Snapshot) error {
	buf, err := AppendSnapshotBinary(nil, s)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// DecodeSnapshotBinary parses a binary snapshot and validates its
// version. Hostile input errors; it never panics or over-allocates.
func DecodeSnapshotBinary(data []byte) (*Snapshot, error) {
	if !bytes.HasPrefix(data, snapshotMagic) {
		return nil, fmt.Errorf("kernel: not a binary snapshot (bad magic)")
	}
	r := binenc.NewReader(data[len(snapshotMagic):])
	s := &Snapshot{Version: int(r.Uvarint())}
	if r.Err() == nil && s.Version != SnapshotVersion {
		return nil, fmt.Errorf("kernel: snapshot version %d, want %d", s.Version, SnapshotVersion)
	}

	meta := r.Frame()
	s.Events = int(meta.Uvarint())
	if err := binenc.FirstErr(meta, r); err != nil {
		return nil, fmt.Errorf("kernel: decode binary snapshot meta: %w", err)
	}

	sec := r.Frame()
	// A prefix entry is at least 7 bytes (2-byte prefix, empty origin
	// set, class, seq, since, empty history).
	n := sec.Count(7)
	for i := 0; i < n; i++ {
		ps := PrefixSnap{Prefix: sec.Prefix().String()}
		ps.Origins = readASNs(sec)
		ps.Class = sec.Byte()
		ps.Seq = sec.Uvarint()
		ps.Since = sec.Int()
		ps.History = readEventSnaps(sec)
		s.Prefixes = append(s.Prefixes, ps)
	}
	if err := binenc.FirstErr(sec, r); err != nil {
		return nil, fmt.Errorf("kernel: decode binary snapshot prefixes: %w", err)
	}

	sec = r.Frame()
	n = sec.Count(7)
	for i := 0; i < n; i++ {
		cs := ConflictSnap{Prefix: sec.Prefix().String()}
		cs.FirstDay = sec.Int()
		cs.LastDay = sec.Int()
		cs.DaysObserved = sec.Int()
		cs.OriginsEver = readASNs(sec)
		nd := sec.Count(1)
		for j := 0; j < nd; j++ {
			cs.ClassDays = append(cs.ClassDays, sec.Int())
		}
		s.Conflicts = append(s.Conflicts, cs)
	}
	if err := binenc.FirstErr(sec, r); err != nil {
		return nil, fmt.Errorf("kernel: decode binary snapshot conflicts: %w", err)
	}

	sec = r.Frame()
	n = sec.Count(2)
	for i := 0; i < n; i++ {
		s.ClosedSpans = append(s.ClosedSpans, SpanSnap{Start: sec.Int(), End: sec.Int()})
	}
	if err := binenc.FirstErr(sec, r); err != nil {
		return nil, fmt.Errorf("kernel: decode binary snapshot spans: %w", err)
	}

	sec = r.Frame()
	s.Log = readEventSnaps(sec)
	if err := binenc.FirstErr(sec, r); err != nil {
		return nil, fmt.Errorf("kernel: decode binary snapshot log: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("kernel: %d trailing bytes after binary snapshot", r.Len())
	}
	return s, nil
}

// DecodeSnapshotAuto reads a snapshot in either format, sniffing the
// content: input opening with the binary magic parses as binary,
// anything else as JSON (whose top level is always an object). This is
// the restore entry point that keeps pre-binary JSON checkpoints
// loading.
func DecodeSnapshotAuto(r io.Reader) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("kernel: read snapshot: %w", err)
	}
	if bytes.HasPrefix(data, snapshotMagic) {
		return DecodeSnapshotBinary(data)
	}
	return DecodeSnapshot(bytes.NewReader(data))
}
