package topology

import (
	"math/rand"
	"testing"

	"moas/internal/bgp"
)

func TestGraphDuplicateRelationshipPanics(t *testing.T) {
	g := NewGraph()
	g.AddAS(701, Tier1)
	g.AddAS(10000, Tier2)
	g.AddTransit(701, 10000)
	defer func() {
		if recover() == nil {
			t.Error("AddPeering on already-connected pair did not panic")
		}
	}()
	g.AddPeering(701, 10000)
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	g.AddAS(701, Tier1)
	g.AddAS(1239, Tier1)
	g.AddAS(10000, Tier2)
	g.AddAS(30000, TierStub)
	g.AddPeering(701, 1239)
	g.AddTransit(701, 10000)
	g.AddTransit(1239, 10000)
	g.AddTransit(10000, 30000)

	if g.Len() != 4 || g.EdgeCount() != 4 {
		t.Fatalf("Len=%d EdgeCount=%d", g.Len(), g.EdgeCount())
	}
	if !g.Has(701) || g.Has(9999) {
		t.Error("Has wrong")
	}
	if g.TierOf(30000) != TierStub || g.TierOf(701) != Tier1 || g.TierOf(4242) != TierStub {
		t.Error("TierOf wrong")
	}
	if ps := g.Providers(10000); len(ps) != 2 || ps[0] != 701 || ps[1] != 1239 {
		t.Errorf("Providers(10000) = %v", ps)
	}
	if cs := g.Customers(701); len(cs) != 1 || cs[0] != 10000 {
		t.Errorf("Customers(701) = %v", cs)
	}
	if ps := g.Peers(701); len(ps) != 1 || ps[0] != 1239 {
		t.Errorf("Peers(701) = %v", ps)
	}
	if !g.Connected(10000, 30000) || g.Connected(701, 30000) {
		t.Error("Connected wrong")
	}
	if g.Index(701) < 0 || g.ByIndex(g.Index(701)) != 701 {
		t.Error("Index round trip broken")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGraphPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	g := NewGraph()
	g.AddAS(1, Tier1)
	g.AddAS(2, Tier2)
	g.AddTransit(1, 2)
	mustPanic("duplicate AS", func() { g.AddAS(1, Tier1) })
	mustPanic("self transit", func() { g.AddTransit(1, 1) })
	mustPanic("self peering", func() { g.AddPeering(2, 2) })
	mustPanic("duplicate link", func() { g.AddTransit(1, 2) })
	mustPanic("unknown AS neighbors", func() { g.Neighbors(99) })
}

func TestGenerateDefault(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3, cfg.Stubs = 20, 60, 400 // scaled for test speed
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.Tier1 + cfg.Tier2 + cfg.Tier3 + cfg.Stubs
	if g.Len() != want {
		t.Fatalf("Len = %d, want %d", g.Len(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-tier-1 AS must have at least one provider (connectivity).
	for _, a := range g.ASes() {
		if g.TierOf(a) == Tier1 {
			continue
		}
		if len(g.Providers(a)) == 0 {
			t.Fatalf("%v has no provider", a)
		}
	}
	// Tier-1 clique: all pairs peer.
	for i := 0; i < cfg.Tier1; i++ {
		for j := i + 1; j < cfg.Tier1; j++ {
			if !g.Connected(Tier1ASNs[i], Tier1ASNs[j]) {
				t.Fatalf("tier-1 %v and %v not connected", Tier1ASNs[i], Tier1ASNs[j])
			}
		}
	}
}

func TestGenerateRequiredStubs(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3, cfg.Stubs = 10, 20, 50
	cfg.RequiredStubs = []bgp.ASN{8584, 15412}
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range cfg.RequiredStubs {
		if !g.Has(a) || g.TierOf(a) != TierStub {
			t.Fatalf("required stub %v missing or wrong tier", a)
		}
		if len(g.Providers(a)) == 0 {
			t.Fatalf("required stub %v unconnected", a)
		}
	}
	// Colliding with the core is rejected.
	cfg.RequiredStubs = []bgp.ASN{701}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("core collision accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3, cfg.Stubs = 10, 30, 100
	g1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Len() != g2.Len() || g1.EdgeCount() != g2.EdgeCount() {
		t.Fatal("same seed produced different graphs")
	}
	for _, a := range g1.ASes() {
		n1, n2 := g1.Neighbors(a), g2.Neighbors(a)
		if len(n1) != len(n2) {
			t.Fatalf("AS %v degree differs", a)
		}
		for i := range n1 {
			if n1[i] != n2[i] {
				t.Fatalf("AS %v adjacency differs", a)
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier1 = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("Tier1=0 accepted")
	}
	cfg = DefaultGenConfig()
	cfg.Tier1 = len(Tier1ASNs) + 1
	if _, err := Generate(cfg); err == nil {
		t.Error("oversized Tier1 accepted")
	}
	cfg = DefaultGenConfig()
	cfg.Tier2 = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("Tier2=0 accepted")
	}
}

func TestBuildPlan(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3, cfg.Stubs = 10, 30, 300
	g, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlan(g, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.All) == 0 {
		t.Fatal("empty plan")
	}
	// Owner map and ByAS must agree; prefixes unique and canonical.
	seen := map[bgp.Prefix]bool{}
	for a, ps := range plan.ByAS {
		for _, p := range ps {
			if seen[p] {
				t.Fatalf("prefix %s allocated twice", p)
			}
			seen[p] = true
			if plan.Owner[p] != a {
				t.Fatalf("owner mismatch for %s", p)
			}
			if !p.IsValid() || p.Family() != bgp.FamilyIPv4 {
				t.Fatalf("bad prefix %s", p)
			}
		}
	}
	if len(seen) != len(plan.All) || len(seen) != len(plan.Owner) {
		t.Fatalf("plan sizes inconsistent: %d/%d/%d", len(seen), len(plan.All), len(plan.Owner))
	}
	// Every AS originates something.
	for _, a := range g.ASes() {
		if len(plan.ByAS[a]) == 0 {
			t.Fatalf("%v originates nothing", a)
		}
	}
	// /24 dominates, as in the real table.
	count24 := 0
	for _, p := range plan.All {
		if p.Bits() == 24 {
			count24++
		}
	}
	frac := float64(count24) / float64(len(plan.All))
	if frac < 0.45 || frac > 0.65 {
		t.Errorf("/24 fraction = %.2f, want ~0.55", frac)
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tier2, cfg.Tier3, cfg.Stubs = 5, 10, 50
	g, _ := Generate(cfg)
	p1, err := BuildPlan(g, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := BuildPlan(g, DefaultPlanConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.All) != len(p2.All) {
		t.Fatal("plan sizes differ across runs")
	}
	for i := range p1.All {
		if p1.All[i] != p2.All[i] {
			t.Fatal("plan order differs across runs")
		}
	}
}

func TestAllocatorSkipsReserved(t *testing.T) {
	al := newAllocator()
	for i := 0; i < 100000; i++ {
		p, err := al.next(24)
		if err != nil {
			t.Fatal(err)
		}
		hi := p.Uint32() >> 24
		if hi == 127 || hi == 10 || hi == 0 || hi >= 224 {
			t.Fatalf("allocated from reserved space: %s", p)
		}
	}
}

func TestLengthSamplerRespectsWeights(t *testing.T) {
	s := newLengthSampler([]LengthBucket{{16, 0.5}, {24, 0.5}})
	counts := map[uint8]int{}
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		counts[s.sample(r)]++
	}
	if counts[16] < 4000 || counts[24] < 4000 {
		t.Fatalf("sampler skewed: %v", counts)
	}
}
