// Package scenario scripts the study: it composes the synthetic topology
// (internal/topology) and routing fabric (internal/simnet) with a
// calibrated episode schedule — long-lived multihoming, short
// misconfigurations, mass false-origination storms, AS_SET aggregates —
// over the paper's 1279-day observation calendar (DefaultSpec; TestSpec
// is the scaled-down two-month variant). The product is a deterministic,
// seedable function from calendar day to multi-peer table view
// (TableViewAt), which the collector serializes into archives and both
// detection paths consume.
package scenario

import (
	"time"

	"moas/internal/bgp"
	"moas/internal/rib"
	"moas/internal/simnet"
)

// DayDate maps a calendar-day index to its date.
func (sc *Scenario) DayDate(d int) time.Time { return sc.Spec.DayDate(d) }

// IsObserved reports whether calendar day d has archive data.
func (sc *Scenario) IsObserved(d int) bool {
	// ObservedDays is ascending; binary search.
	lo, hi := 0, len(sc.ObservedDays)
	for lo < hi {
		mid := (lo + hi) / 2
		if sc.ObservedDays[mid] < d {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sc.ObservedDays) && sc.ObservedDays[lo] == d
}

// FinalObservedDay returns the last day with archive data.
func (sc *Scenario) FinalObservedDay() int {
	return sc.ObservedDays[len(sc.ObservedDays)-1]
}

// Cursor walks the calendar maintaining the active episode set
// incrementally — the multi-year driver's O(changes/day) iteration.
type Cursor struct {
	sc     *Scenario
	day    int
	active map[int]bool
}

// NewCursor returns a cursor positioned before day 0.
func (sc *Scenario) NewCursor() *Cursor {
	return &Cursor{sc: sc, day: -1, active: make(map[int]bool)}
}

// Advance moves to the given calendar day (which must be ≥ the current
// position) and returns the IDs of episodes active on it. The returned
// map is the cursor's own state; callers must not mutate it.
func (c *Cursor) Advance(day int) map[int]bool {
	if day < c.day {
		panic("scenario: cursor moved backwards")
	}
	for d := c.day + 1; d <= day; d++ {
		for _, id := range c.sc.startsOn[d] {
			c.active[id] = true
		}
		for _, id := range c.sc.endsOn[d] {
			delete(c.active, id)
		}
	}
	c.day = day
	return c.active
}

// ActiveEpisodes returns episode IDs active on an arbitrary calendar day
// (linear scan; use a Cursor for sequential iteration).
func (sc *Scenario) ActiveEpisodes(day int) []int {
	var out []int
	for i := range sc.Episodes {
		if sc.Episodes[i].ActiveOn(day) {
			out = append(out, i)
		}
	}
	return out
}

// EpisodeRoutes returns the collector's per-peer routes for an episode —
// the same information a full table snapshot would contain for its prefix.
// Results are cached: an episode's advertisements are constant for its
// lifetime.
func (sc *Scenario) EpisodeRoutes(id int) []rib.PeerRoute {
	if sc.routeCache == nil {
		sc.routeCache = make(map[int][]rib.PeerRoute)
	}
	if rs, ok := sc.routeCache[id]; ok {
		return rs
	}
	rs := sc.EpisodeRoutesNoCache(id)
	sc.routeCache[id] = rs
	return rs
}

// EpisodeRoutesNoCache materializes an episode's collector routes without
// retaining them — the multi-year driver summarizes tens of thousands of
// episodes and must not hold every route set alive.
func (sc *Scenario) EpisodeRoutesNoCache(id int) []rib.PeerRoute {
	e := &sc.Episodes[id]
	return sc.wrapVantageRoutes(e.Prefix, sc.Net.CollectorPaths(e.Advertisements(sc.Net)))
}

// wrapVantageRoutes converts simulator vantage routes into the RIB layer's
// peer-route form (peer IDs are vantage positions).
func (sc *Scenario) wrapVantageRoutes(prefix bgp.Prefix, vrs []simnet.VantageRoute) []rib.PeerRoute {
	out := make([]rib.PeerRoute, 0, len(vrs))
	for _, vr := range vrs {
		out = append(out, rib.PeerRoute{
			PeerID: sc.peerID(vr.Vantage),
			PeerAS: vr.Vantage,
			Route: bgp.Route{
				Prefix: prefix,
				Attrs:  &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: vr.Path},
			},
		})
	}
	return out
}

// peerID returns the collector peer index of a vantage AS.
func (sc *Scenario) peerID(v bgp.ASN) uint16 {
	for i, a := range sc.Vantages {
		if a == v {
			return uint16(i)
		}
	}
	return 0
}

// AggregateRoutes returns the AS_SET-terminated routes for one aggregate:
// each vantage's path to the aggregating AS with the set appended — the
// §III exclusion case.
func (sc *Scenario) AggregateRoutes(a Aggregate) []rib.PeerRoute {
	vrs := sc.Net.CollectorPaths(simnet.AdvertiseSingle(a.Aggregator))
	out := make([]rib.PeerRoute, 0, len(vrs))
	for _, vr := range vrs {
		path := append(vr.Path.Clone(), bgp.Segment{
			Type: bgp.SegSet, ASes: append([]bgp.ASN(nil), a.SetMembers...),
		})
		out = append(out, rib.PeerRoute{
			PeerID: sc.peerID(vr.Vantage),
			PeerAS: vr.Vantage,
			Route: bgp.Route{
				Prefix: a.Prefix,
				Attrs:  &bgp.Attrs{Origin: bgp.OriginIGP, ASPath: path, AtomicAggregate: true},
			},
		})
	}
	return out
}

// TableViewAt materializes the complete multi-peer table for one calendar
// day: the non-conflicted background, every active episode's routes, and
// the AS_SET aggregates. This is the full-fidelity path used by tests,
// examples and MRT archive generation; the multi-year reproduction uses
// the incremental cursor (proven equivalent in the driver's tests).
func (sc *Scenario) TableViewAt(day int) *rib.TableView {
	view := rib.NewTableView()
	for _, p := range sc.BackgroundPool {
		owner := sc.Plan.Owner[p]
		for _, pr := range sc.wrapVantageRoutes(p, sc.Net.CollectorPaths(simnet.AdvertiseSingle(owner))) {
			view.Add(pr)
		}
	}
	for _, id := range sc.ActiveEpisodes(day) {
		for _, pr := range sc.EpisodeRoutes(id) {
			view.Add(pr)
		}
	}
	for _, a := range sc.AggregatePrefixes {
		for _, pr := range sc.AggregateRoutes(a) {
			view.Add(pr)
		}
	}
	return view
}
