package rislive

import (
	"testing"
	"time"

	"moas/internal/source"
)

// TestClientGapAcrossDoubleKill covers gap accounting when the transport
// dies twice in quick succession — the second kill landing on a fresh
// connection that never delivered a message, i.e. inside the first
// outage's backoff window. lastSrv must carry across both reconnects
// untouched, so the single gap event on the next delivered message
// reports the exact total missed across BOTH windows: no double count,
// no lost remainder, and no spurious unknown-gap from the fresh flag the
// second reconnect re-arms.
func TestClientGapAcrossDoubleKill(t *testing.T) {
	gaps := make(chan source.Gap, 4)
	f, c := newPair(t, Config{OnGap: func(g source.Gap) { gaps <- g }})

	send := func(n int) {
		for i := 0; i < n; i++ {
			f.Send(Msg{Timestamp: 100, Peer: "192.0.2.9", PeerASN: 65001, Withdrawals: []string{"10.0.0.0/8"}})
		}
	}
	var rec source.Record
	send(2) // server seq 1, 2: delivered
	for i := 0; i < 2; i++ {
		if err := c.Next(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.WaitSubscribed(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Outage one. The pending Next reconnects; the sends while no
	// subscriber is attached are lost but still consume server sequence
	// numbers, exactly like RIS Live messages published mid-outage.
	f.Kill()
	send(2) // server seq 3, 4: lost
	type res struct {
		rec source.Record
		err error
	}
	done := make(chan res, 1)
	go func() {
		var r source.Record
		err := c.Next(&r)
		done <- res{r, err}
	}()
	if err := f.WaitSubscribed(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Outage two, before the fresh connection delivers anything: the
	// client is still inside the first outage's accounting window.
	f.Kill()
	send(2) // server seq 5, 6: lost
	if err := f.WaitSubscribed(3, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	send(1) // server seq 7: delivered — triggers the gap arithmetic
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.rec.Seq != 3 {
		t.Fatalf("post-reconnect record Seq=%d, want 3", r.rec.Seq)
	}

	select {
	case g := <-gaps:
		if !g.Known || g.Missed != 4 {
			t.Fatalf("gap %+v, want Known=true Missed=4 (both outage windows, counted once)", g)
		}
	default:
		t.Fatal("no gap emitted across the double kill")
	}
	select {
	case g := <-gaps:
		t.Fatalf("second gap event %+v — missed messages double-counted", g)
	default:
	}
	st := c.Status()
	if st.Reconnects != 2 || st.Gaps != 1 || !st.Connected {
		t.Fatalf("Status: %+v, want Reconnects=2 Gaps=1 Connected=true", st)
	}
}
