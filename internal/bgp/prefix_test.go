package bgp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePrefixIPv4(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"10.0.0.0/8", "10.0.0.0/8"},
		{"192.168.1.0/24", "192.168.1.0/24"},
		{"192.168.1.7/24", "192.168.1.0/24"}, // host bits canonicalized away
		{"0.0.0.0/0", "0.0.0.0/0"},
		{"255.255.255.255/32", "255.255.255.255/32"},
		{"198.32.0.0/16", "198.32.0.0/16"},
		{"172.16.99.1/12", "172.16.0.0/12"},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", c.in, err)
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePrefix(%q).String() = %q, want %q", c.in, got, c.want)
		}
		if p.Family() != FamilyIPv4 {
			t.Errorf("ParsePrefix(%q).Family() = %v, want ipv4", c.in, p.Family())
		}
	}
}

func TestParsePrefixIPv6(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"2001:db8::/32", "2001:db8:0:0:0:0:0:0/32"},
		{"::/0", "0:0:0:0:0:0:0:0/0"},
		{"2001:db8:1:2:3:4:5:6/128", "2001:db8:1:2:3:4:5:6/128"},
		{"fe80::1/10", "fe80:0:0:0:0:0:0:0/10"},
	}
	for _, c := range cases {
		p, err := ParsePrefix(c.in)
		if err != nil {
			t.Fatalf("ParsePrefix(%q): %v", c.in, err)
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePrefix(%q).String() = %q, want %q", c.in, got, c.want)
		}
		if p.Family() != FamilyIPv6 {
			t.Errorf("ParsePrefix(%q).Family() = %v, want ipv6", c.in, p.Family())
		}
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, in := range []string{
		"", "10.0.0.0", "10.0.0.0/33", "10.0.0/8", "10.0.0.0.0/8",
		"300.0.0.0/8", "10.0.0.0/x", "2001:db8::/129", "g::1/32",
		"1:2:3:4:5:6:7:8:9/64", "1:2:3/64",
	} {
		if _, err := ParsePrefix(in); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", in)
		}
	}
}

func TestPrefixIsMapKey(t *testing.T) {
	m := map[Prefix]int{}
	m[MustParsePrefix("10.0.0.0/8")] = 1
	m[MustParsePrefix("10.0.0.1/8")] = 2 // same canonical prefix
	if len(m) != 1 || m[MustParsePrefix("10.0.0.0/8")] != 2 {
		t.Fatalf("canonicalization broken: %v", m)
	}
}

func TestPrefixCovers(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"10.0.0.0/8", "10.1.0.0/16", true},
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.0.0/16", "10.0.0.0/8", false},
		{"10.0.0.0/8", "11.0.0.0/16", false},
		{"0.0.0.0/0", "203.0.113.0/24", true},
		{"198.51.100.0/24", "198.51.100.128/25", true},
		{"198.51.100.0/25", "198.51.100.128/25", false},
	}
	for _, c := range cases {
		p, q := MustParsePrefix(c.p), MustParsePrefix(c.q)
		if got := p.Covers(q); got != c.want {
			t.Errorf("%s.Covers(%s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestPrefixCoversCrossFamily(t *testing.T) {
	v4 := MustParsePrefix("0.0.0.0/0")
	v6 := MustParsePrefix("::/0")
	if v4.Covers(v6) || v6.Covers(v4) {
		t.Error("cross-family Covers must be false")
	}
	if v4.Overlaps(v6) {
		t.Error("cross-family Overlaps must be false")
	}
}

func TestPrefixOverlapsSymmetric(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	q := MustParsePrefix("10.2.0.0/16")
	if !p.Overlaps(q) || !q.Overlaps(p) {
		t.Error("Overlaps must be symmetric for nested prefixes")
	}
}

func TestPrefixCompare(t *testing.T) {
	ordered := []string{
		"0.0.0.0/0", "9.255.0.0/16", "10.0.0.0/7", "10.0.0.0/8",
		"10.0.0.0/24", "10.0.1.0/24", "192.168.0.0/16",
	}
	for i := range ordered {
		for j := range ordered {
			p, q := MustParsePrefix(ordered[i]), MustParsePrefix(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := p.Compare(q); got != want {
				t.Errorf("%s.Compare(%s) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestPrefixFromUint32(t *testing.T) {
	p := PrefixFromUint32(0xC0A80100, 24)
	if got := p.String(); got != "192.168.1.0/24" {
		t.Fatalf("PrefixFromUint32 = %q, want 192.168.1.0/24", got)
	}
	if p.Uint32() != 0xC0A80100 {
		t.Fatalf("Uint32 round-trip = %08x", p.Uint32())
	}
}

func TestPrefixFromPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PrefixFrom4 with bits=33 did not panic")
		}
	}()
	PrefixFrom4([4]byte{1, 2, 3, 4}, 33)
}

func TestNLRIRoundTripIPv4(t *testing.T) {
	for _, s := range []string{"0.0.0.0/0", "10.0.0.0/8", "198.51.100.0/24", "203.0.113.255/32", "128.0.0.0/1"} {
		p := MustParsePrefix(s)
		enc := p.AppendNLRI(nil)
		got, n, err := DecodeNLRI(enc, FamilyIPv4)
		if err != nil {
			t.Fatalf("DecodeNLRI(%s): %v", s, err)
		}
		if n != len(enc) {
			t.Errorf("DecodeNLRI(%s) consumed %d of %d bytes", s, n, len(enc))
		}
		if got != p {
			t.Errorf("NLRI round trip %s -> %s", p, got)
		}
	}
}

func TestDecodeNLRIErrors(t *testing.T) {
	if _, _, err := DecodeNLRI(nil, FamilyIPv4); err == nil {
		t.Error("empty NLRI: want error")
	}
	if _, _, err := DecodeNLRI([]byte{33, 1, 2, 3, 4, 5}, FamilyIPv4); err == nil {
		t.Error("NLRI length 33 for IPv4: want error")
	}
	if _, _, err := DecodeNLRI([]byte{24, 1, 2}, FamilyIPv4); err == nil {
		t.Error("truncated NLRI body: want error")
	}
}

// quickPrefix draws a random canonical IPv4 prefix.
func quickPrefix(r *rand.Rand) Prefix {
	return PrefixFromUint32(r.Uint32(), uint8(r.Intn(33)))
}

func TestQuickNLRIRoundTrip(t *testing.T) {
	f := func(addr uint32, bitsSeed uint8) bool {
		p := PrefixFromUint32(addr, bitsSeed%33)
		got, n, err := DecodeNLRI(p.AppendNLRI(nil), FamilyIPv4)
		return err == nil && got == p && n == 1+(int(p.Bits())+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(addr uint32, bitsSeed uint8) bool {
		p := PrefixFromUint32(addr, bitsSeed%33)
		q, err := ParsePrefix(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p, q := quickPrefix(r), quickPrefix(r)
		if p.Compare(q) != -q.Compare(p) {
			t.Fatalf("Compare antisymmetry violated for %s, %s", p, q)
		}
		if (p.Compare(q) == 0) != (p == q) {
			t.Fatalf("Compare==0 iff equal violated for %s, %s", p, q)
		}
	}
}

func TestQuickCoversTransitive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		// Build a chain p ⊇ q ⊇ s by re-masking one random address.
		addr := r.Uint32()
		b1 := uint8(r.Intn(17))     // 0..16
		b2 := b1 + uint8(r.Intn(9)) // b1..b1+8
		b3 := b2 + uint8(r.Intn(9)) // b2..b2+8
		p, q, s := PrefixFromUint32(addr, b1), PrefixFromUint32(addr, b2), PrefixFromUint32(addr, b3)
		if !p.Covers(q) || !q.Covers(s) || !p.Covers(s) {
			t.Fatalf("Covers transitivity violated: %s %s %s", p, q, s)
		}
	}
}

func BenchmarkPrefixAppendNLRI(b *testing.B) {
	p := MustParsePrefix("198.51.100.0/24")
	buf := make([]byte, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.AppendNLRI(buf[:0])
	}
}

func BenchmarkDecodeNLRI(b *testing.B) {
	enc := MustParsePrefix("198.51.100.0/24").AppendNLRI(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeNLRI(enc, FamilyIPv4); err != nil {
			b.Fatal(err)
		}
	}
}
