package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestOSRoundTrip(t *testing.T) {
	fs := OS{}
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := fs.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(filepath.Join(sub, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(filepath.Join(sub, "x"), filepath.Join(sub, "y")); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(filepath.Join(sub, "y"))
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile: %q %v", b, err)
	}
	ents, err := fs.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "y" {
		t.Fatalf("ReadDir: %v %v", ents, err)
	}
	if _, err := fs.Stat(filepath.Join(sub, "y")); err != nil {
		t.Fatal(err)
	}
	if err := fs.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultNil(t *testing.T) {
	if _, ok := Default(nil).(OS); !ok {
		t.Fatal("Default(nil) is not OS")
	}
	f := NewFaulty(nil)
	if Default(f) != FS(f) {
		t.Fatal("Default(fs) did not pass through")
	}
}

func TestFaultyWriteBudgetENOSPC(t *testing.T) {
	f := NewFaulty(nil)
	f.SetWriteBudget(8)
	dir := t.TempDir()
	w, err := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := w.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("within budget: %d %v", n, err)
	}
	// Crossing the line tears the write at the boundary.
	if n, err := w.Write([]byte("67890")); n != 3 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("crossing budget: %d %v", n, err)
	}
	if n, err := w.Write([]byte("a")); n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted budget: %d %v", n, err)
	}
	if f.Injected() != 2 {
		t.Fatalf("Injected=%d, want 2", f.Injected())
	}
	f.Heal()
	if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("after heal: %d %v", n, err)
	}
	w.Close()
	b, _ := f.ReadFile(filepath.Join(dir, "x"))
	if string(b) != "12345"+"678"+"ok" {
		t.Fatalf("on-disk bytes %q", b)
	}
}

func TestFaultErrorOnceThenHeal(t *testing.T) {
	f := NewFaulty(nil)
	boom := errors.New("boom")
	f.AddFault(Fault{Op: OpSync, After: 1, Count: 2, Err: boom})
	dir := t.TempDir()
	w, err := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Sync(); err != nil { // call 0: before After
		t.Fatalf("sync 0: %v", err)
	}
	for i := 0; i < 2; i++ { // calls 1,2: firing window
		if err := w.Sync(); !errors.Is(err, boom) {
			t.Fatalf("sync %d: %v, want boom", i+1, err)
		}
	}
	if err := w.Sync(); err != nil { // call 3: schedule exhausted, self-healed
		t.Fatalf("sync 3: %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	f := NewFaulty(nil)
	f.AddFault(Fault{Op: OpWrite, Count: 1, Torn: 3})
	dir := t.TempDir()
	w, _ := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	n, err := w.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: %d %v", n, err)
	}
	if n, err := w.Write([]byte("xyz")); n != 3 || err != nil {
		t.Fatalf("post-torn write: %d %v", n, err)
	}
	w.Close()
	b, _ := f.ReadFile(filepath.Join(dir, "x"))
	if string(b) != "abcxyz" {
		t.Fatalf("on-disk bytes %q", b)
	}
}

func TestFaultPathMatchAndOps(t *testing.T) {
	f := NewFaulty(nil)
	f.AddFault(Fault{Op: OpRename, Path: "ck-"})
	f.AddFault(Fault{Op: OpMkdir})
	f.AddFault(Fault{Op: OpRemove})
	f.AddFault(Fault{Op: OpCreate, Path: "seg-"})
	dir := t.TempDir()
	if err := f.MkdirAll(filepath.Join(dir, "d"), 0o755); err == nil {
		t.Fatal("mkdir fault did not fire")
	}
	w, _ := OS{}.OpenFile(filepath.Join(dir, "a"), os.O_CREATE|os.O_WRONLY, 0o644)
	w.Close()
	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); err != nil {
		t.Fatalf("rename to unmatched path: %v", err)
	}
	if err := f.Rename(filepath.Join(dir, "b"), filepath.Join(dir, "ck-1")); err == nil {
		t.Fatal("rename fault did not fire on matching path")
	}
	if err := f.Remove(filepath.Join(dir, "b")); err == nil {
		t.Fatal("remove fault did not fire")
	}
	if _, err := f.OpenFile(filepath.Join(dir, "seg-1"), os.O_CREATE|os.O_WRONLY, 0o644); err == nil {
		t.Fatal("create fault did not fire")
	}
	if _, err := f.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_WRONLY, 0o644); err != nil {
		t.Fatalf("create on unmatched path: %v", err)
	}
}

func TestFaultDelayOnly(t *testing.T) {
	f := NewFaulty(nil)
	f.AddFault(Fault{Op: OpWrite, Delay: 30 * time.Millisecond})
	dir := t.TempDir()
	w, _ := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	defer w.Close()
	start := time.Now()
	if n, err := w.Write([]byte("slow")); n != 4 || err != nil {
		t.Fatalf("slow write: %d %v", n, err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("write returned after %v, want >= 30ms delay", d)
	}
	if f.Injected() != 0 {
		t.Fatalf("delay-only firing counted as injected: %d", f.Injected())
	}
}

func TestFaultPanic(t *testing.T) {
	f := NewFaulty(nil)
	f.AddFault(Fault{Op: OpWrite, Panic: true, Count: 1})
	dir := t.TempDir()
	w, _ := f.OpenFile(filepath.Join(dir, "x"), os.O_CREATE|os.O_WRONLY, 0o644)
	defer w.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic")
			}
			if !strings.Contains(r.(string), "injected panic") {
				t.Fatalf("panic value %v", r)
			}
		}()
		w.Write([]byte("boom"))
	}()
	if f.Injected() != 1 {
		t.Fatalf("Injected=%d, want 1", f.Injected())
	}
	// Count=1: the schedule healed itself after the panic.
	if n, err := w.Write([]byte("ok")); n != 2 || err != nil {
		t.Fatalf("post-panic write: %d %v", n, err)
	}
}
