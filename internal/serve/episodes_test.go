package serve

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

type episodesResp struct {
	Count    int `json:"count"`
	Episodes []struct {
		Prefix  string   `json:"prefix"`
		Origins []uint32 `json:"origins"`
		Class   string   `json:"class"`
		Seq     uint64   `json:"seq"`
		Start   int      `json:"start_day"`
		End     int      `json:"end_day"`
		Days    int      `json:"days"`
		Open    bool     `json:"open"`
	} `json:"episodes"`
}

type episodesSummary struct {
	Total      int    `json:"total"`
	Open       int    `json:"open"`
	Closed     int    `json:"closed"`
	Persistent int    `json:"persistent"`
	ByClass    []int  `json:"by_class"`
	Durations  [5]int `json:"durations"`
}

// TestEpisodeEndpoints: with an episode directory configured, a finished
// replay's full conflict history is queryable through /episodes — time
// range, prefix, origin-AS, class and duration filters all narrow it —
// /episodes/summary histograms the same selection, and DELETE takes the
// on-disk log with it. Without an episode directory the endpoints 404.
func TestEpisodeEndpoints(t *testing.T) {
	epiDir := t.TempDir()
	reg := NewRegistry()
	reg.EpisodeDir = epiDir
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	client := srv.Client()

	resp, body := postJSON(t, client, srv.URL+"/scenarios",
		map[string]any{"id": "hist", "source": "synth", "scale": "small", "shards": 2, "start": true})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, body)
	}
	waitState(t, client, srv.URL+"/scenarios/hist", "done")

	var all episodesResp
	if r := getJSON(t, client, srv.URL+"/scenarios/hist/episodes?limit=100000", &all); r.StatusCode != http.StatusOK {
		t.Fatalf("GET episodes: %d", r.StatusCode)
	}
	if all.Count == 0 {
		t.Fatal("no episodes recorded for the small synth scenario")
	}
	for _, ep := range all.Episodes {
		if len(ep.Origins) < 2 || ep.Days != ep.End-ep.Start+1 || ep.Days < 1 || ep.Seq == 0 {
			t.Fatalf("malformed episode: %+v", ep)
		}
	}

	// Filters narrow the same log: a time-range query must return the
	// episodes overlapping it and nothing else, and a prefix filter only
	// that prefix.
	var ranged episodesResp
	getJSON(t, client, srv.URL+"/scenarios/hist/episodes?from=10&to=20&limit=100000", &ranged)
	if ranged.Count == 0 || ranged.Count > all.Count {
		t.Fatalf("ranged query returned %d of %d episodes", ranged.Count, all.Count)
	}
	for _, ep := range ranged.Episodes {
		if ep.End < 10 || ep.Start > 20 {
			t.Fatalf("episode [%d,%d] outside requested range [10,20]", ep.Start, ep.End)
		}
	}
	pfx := all.Episodes[0].Prefix
	var byPfx episodesResp
	getJSON(t, client, srv.URL+"/scenarios/hist/episodes?prefix="+pfx+"&limit=100000", &byPfx)
	if byPfx.Count == 0 {
		t.Fatalf("prefix filter %s matched nothing", pfx)
	}
	for _, ep := range byPfx.Episodes {
		if ep.Prefix != pfx {
			t.Fatalf("prefix filter %s returned %s", pfx, ep.Prefix)
		}
	}

	var sum episodesSummary
	if r := getJSON(t, client, srv.URL+"/scenarios/hist/episodes/summary", &sum); r.StatusCode != http.StatusOK {
		t.Fatalf("GET summary: %d", r.StatusCode)
	}
	if sum.Total != all.Count || sum.Open+sum.Closed != sum.Total {
		t.Fatalf("summary %+v does not account for the %d episodes", sum, all.Count)
	}
	var bucketed int
	for _, n := range sum.Durations {
		bucketed += n
	}
	if bucketed != sum.Total {
		t.Fatalf("duration buckets %v sum to %d, want %d", sum.Durations, bucketed, sum.Total)
	}

	// Bad filter values are rejected, not silently ignored.
	if r := getJSON(t, client, srv.URL+"/scenarios/hist/episodes?from=yesterday", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from value: %d, want 400", r.StatusCode)
	}
	if r := getJSON(t, client, srv.URL+"/scenarios/hist/episodes?class=bogus", nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad class value: %d, want 400", r.StatusCode)
	}

	// DELETE removes the scenario's episode directory with it.
	delReq, _ := http.NewRequest("DELETE", srv.URL+"/scenarios/hist", nil)
	delResp, err := client.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if _, err := os.Stat(filepath.Join(epiDir, "hist")); !os.IsNotExist(err) {
		t.Fatalf("episode dir survived delete: %v", err)
	}

	// Without an EpisodeDir the endpoints answer 404, not empty results.
	plain := NewRegistry()
	defer plain.Close()
	srv2 := httptest.NewServer(NewHandler(plain))
	defer srv2.Close()
	if _, err := plain.Create(ScenarioConfig{ID: "nolog"}); err != nil {
		t.Fatal(err)
	}
	if r := getJSON(t, srv2.Client(), srv2.URL+"/scenarios/nolog/episodes", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("episodes without EpisodeDir: %d, want 404", r.StatusCode)
	}
}
