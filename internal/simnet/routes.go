// Package simnet simulates policy-constrained BGP route propagation over
// an AS topology: the valley-free (Gao-Rexford) export model, per-vantage
// AS-path computation, and the advertisement primitives that produce every
// MOAS-conflict cause the paper discusses — multi-homing without BGP,
// private-AS substitution, exchange-point prefixes, split-view traffic
// engineering, and false originations.
package simnet

import (
	"fmt"
	"sort"
	"strings"

	"moas/internal/bgp"
	"moas/internal/topology"
)

// Route preference classes, ordered best-first: an AS prefers routes
// learned from customers over peers over providers (Gao-Rexford).
const (
	classSelf     int8 = 0
	classCustomer int8 = 1
	classPeer     int8 = 2
	classProvider int8 = 3
	classNone     int8 = 0x7F
)

// RouteTable holds, for one advertisement root, every AS's chosen route
// toward the root: preference class, hop count and next hop. It is the
// unit the Net caches and reuses across prefixes and days.
type RouteTable struct {
	root  bgp.ASN
	class []int8
	hops  []int32
	next  []int32 // dense index of the next hop toward root; -1 at root
}

// Reachable reports whether the AS at dense index i has any route.
func (t *RouteTable) reachable(i int) bool { return t.class[i] != classNone }

// Net wraps a topology with cached propagation state.
type Net struct {
	G *topology.Graph

	cache map[string]*RouteTable
	// pathCache memoizes reconstructed vantage paths per route table.
	pathCache map[pathKey]bgp.Path

	// vantages and vsCache back CollectorPaths (see collector_paths.go).
	vantages []bgp.ASN
	vsCache  map[string]*vantageSummary
}

type pathKey struct {
	table   *RouteTable
	vantage bgp.ASN
}

// New returns a simulator over g.
func New(g *topology.Graph) *Net {
	return &Net{
		G:         g,
		cache:     make(map[string]*RouteTable),
		pathCache: make(map[pathKey]bgp.Path),
	}
}

// cacheKey canonicalizes (root, firstHops).
func cacheKey(root bgp.ASN, firstHops []bgp.ASN) string {
	if len(firstHops) == 0 {
		return root.String()
	}
	hs := append([]bgp.ASN(nil), firstHops...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	var b strings.Builder
	b.WriteString(root.String())
	for _, h := range hs {
		fmt.Fprintf(&b, "|%d", h)
	}
	return b.String()
}

// Routes computes (or returns cached) the route table for an advertisement
// rooted at root. If firstHops is non-empty, only those neighbors of root
// hear the advertisement — the selective-announcement knob used for
// split-view and single-provider configurations.
func (n *Net) Routes(root bgp.ASN, firstHops []bgp.ASN) *RouteTable {
	key := cacheKey(root, firstHops)
	if t, ok := n.cache[key]; ok {
		return t
	}
	t := n.propagate(root, firstHops)
	n.cache[key] = t
	return t
}

// InvalidateCache drops all cached route state; callers must invalidate
// after mutating the topology.
func (n *Net) InvalidateCache() {
	n.cache = make(map[string]*RouteTable)
	n.pathCache = make(map[pathKey]bgp.Path)
	if n.vsCache != nil {
		n.vsCache = make(map[string]*vantageSummary)
	}
}

// propagate runs the three-stage valley-free computation:
//
//	stage A   customer routes climb provider links from the root;
//	stage B   ASes holding customer routes (or the root) export to peers;
//	stage C   everything flows down customer links.
//
// Selection at every AS is (class, hops, lowest next-hop AS), giving a
// deterministic routing tree.
func (n *Net) propagate(root bgp.ASN, firstHops []bgp.ASN) *RouteTable {
	g := n.G
	size := g.Len()
	t := &RouteTable{
		root:  root,
		class: make([]int8, size),
		hops:  make([]int32, size),
		next:  make([]int32, size),
	}
	for i := range t.class {
		t.class[i] = classNone
		t.next[i] = -1
	}
	ri := g.Index(root)
	if ri < 0 {
		return t
	}
	t.class[ri] = classSelf

	allowed := func(to bgp.ASN) bool { return true }
	if len(firstHops) > 0 {
		set := make(map[bgp.ASN]bool, len(firstHops))
		for _, h := range firstHops {
			set[h] = true
		}
		allowed = func(to bgp.ASN) bool { return set[to] }
	}

	// Stage A: BFS up provider links. Frontier kept in ascending AS order
	// so that the first writer for any AS is the lowest-numbered next hop
	// among minimal-hop candidates.
	frontier := []int{ri}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return g.ByIndex(frontier[a]) < g.ByIndex(frontier[b]) })
		var next []int
		for _, ui := range frontier {
			u := g.ByIndex(ui)
			for _, e := range g.Neighbors(u) {
				if e.Rel != topology.RelProvider {
					continue
				}
				if ui == ri && !allowed(e.To) {
					continue
				}
				vi := g.Index(e.To)
				if t.class[vi] != classNone {
					continue
				}
				t.class[vi] = classCustomer
				t.hops[vi] = t.hops[ui] + 1
				t.next[vi] = int32(ui)
				next = append(next, vi)
			}
		}
		frontier = next
	}

	// Stage B: single peer hop from every customer-route holder.
	// Sources sorted by (hops, ASN) so acceptance order is deterministic.
	var sources []int
	for i := range t.class {
		if t.class[i] <= classCustomer {
			sources = append(sources, i)
		}
	}
	sort.Slice(sources, func(a, b int) bool {
		ia, ib := sources[a], sources[b]
		if t.hops[ia] != t.hops[ib] {
			return t.hops[ia] < t.hops[ib]
		}
		return g.ByIndex(ia) < g.ByIndex(ib)
	})
	for _, ui := range sources {
		u := g.ByIndex(ui)
		for _, e := range g.Neighbors(u) {
			if e.Rel != topology.RelPeer {
				continue
			}
			if ui == ri && !allowed(e.To) {
				continue
			}
			vi := g.Index(e.To)
			if t.class[vi] != classNone { // already has an equal-or-better route
				continue
			}
			t.class[vi] = classPeer
			t.hops[vi] = t.hops[ui] + 1
			t.next[vi] = int32(ui)
		}
	}

	// Stage C: flow down customer links from every route holder, processed
	// in ascending (hops, ASN) buckets for determinism.
	type seed struct{ idx int }
	buckets := map[int32][]int{}
	var maxHop int32
	for i := range t.class {
		if t.class[i] != classNone {
			buckets[t.hops[i]] = append(buckets[t.hops[i]], i)
			if t.hops[i] > maxHop {
				maxHop = t.hops[i]
			}
		}
	}
	for h := int32(0); h <= maxHop; h++ {
		bucket := buckets[h]
		sort.Slice(bucket, func(a, b int) bool { return g.ByIndex(bucket[a]) < g.ByIndex(bucket[b]) })
		for _, ui := range bucket {
			u := g.ByIndex(ui)
			for _, e := range g.Neighbors(u) {
				if e.Rel != topology.RelCustomer {
					continue
				}
				if ui == ri && !allowed(e.To) {
					continue
				}
				vi := g.Index(e.To)
				if t.class[vi] != classNone {
					continue
				}
				t.class[vi] = classProvider
				t.hops[vi] = t.hops[ui] + 1
				t.next[vi] = int32(ui)
				if t.hops[vi] > maxHop {
					maxHop = t.hops[vi]
					// bucket map grows as we discover deeper levels
				}
				buckets[t.hops[vi]] = append(buckets[t.hops[vi]], vi)
			}
		}
	}
	return t
}

// PathFrom reconstructs the AS path from vantage v to the table's root:
// [v, ..., root]. ok is false when v has no route. Paths are memoized.
func (n *Net) PathFrom(t *RouteTable, v bgp.ASN) (bgp.Path, bool) {
	vi := n.G.Index(v)
	if vi < 0 || !t.reachable(vi) {
		return nil, false
	}
	key := pathKey{table: t, vantage: v}
	if p, ok := n.pathCache[key]; ok {
		return p, true
	}
	var ases []bgp.ASN
	for i := vi; ; {
		ases = append(ases, n.G.ByIndex(i))
		if t.next[i] < 0 {
			break
		}
		i = int(t.next[i])
	}
	p := bgp.Path{{Type: bgp.SegSequence, ASes: ases}}
	n.pathCache[key] = p
	return p, true
}

// ClassAt returns the preference class and hop count v holds toward the
// table's root (exposed for tests and diagnostics).
func (t *RouteTable) ClassAt(g *topology.Graph, v bgp.ASN) (int8, int32, bool) {
	vi := g.Index(v)
	if vi < 0 || !t.reachable(vi) {
		return classNone, 0, false
	}
	return t.class[vi], t.hops[vi], true
}
