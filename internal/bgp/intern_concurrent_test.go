package bgp

import (
	"sync"
	"testing"
)

// TestInternConcurrentPointerCanonical is the striped interner's core
// soundness claim under -race: N goroutines interning an overlapping set
// of wire blocks concurrently must all receive the same canonical
// pointer per distinct block — the invariant the shards' pointer-equality
// fast path depends on. No cap is set, so no epoch flip can excuse a
// pointer change.
func TestInternConcurrentPointerCanonical(t *testing.T) {
	const goroutines = 8
	const blocks = 512
	const rounds = 4

	in := NewAttrsInterner(false)
	wires := make([][]byte, blocks)
	direct := make([]*Attrs, blocks)
	for i := range wires {
		wires[i] = wireFor(t, ASN(1000+i))
		direct[i] = new(Attrs)
		if err := direct[i].DecodeAttrs(wires[i]); err != nil {
			t.Fatal(err)
		}
	}

	got := make([][]*Attrs, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ptrs := make([]*Attrs, blocks)
			<-start
			for r := 0; r < rounds; r++ {
				// Each goroutine walks the block set from a different
				// offset so first-intern races land on every block.
				for k := 0; k < blocks; k++ {
					i := (k + g*blocks/goroutines) % blocks
					a, err := in.Intern(wires[i])
					if err != nil {
						errs[g] = err
						return
					}
					if ptrs[i] == nil {
						ptrs[i] = a
					} else if ptrs[i] != a {
						errs[g] = errNonCanonical(i)
						return
					}
				}
			}
			got[g] = ptrs
		}(g)
	}
	close(start)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for i := 0; i < blocks; i++ {
		p := got[0][i]
		for g := 1; g < goroutines; g++ {
			if got[g][i] != p {
				t.Fatalf("block %d: goroutine %d saw a different pointer than goroutine 0", i, g)
			}
		}
		if !p.Equal(direct[i]) {
			t.Fatalf("block %d: interned attrs differ from direct decode", i)
		}
	}
	if in.Len() != blocks {
		t.Fatalf("Len = %d after %d distinct blocks, want %d", in.Len(), blocks, blocks)
	}
	if in.Epochs() != 0 {
		t.Fatalf("Epochs = %d with no cap set, want 0", in.Epochs())
	}
}

type errNonCanonical int

func (e errNonCanonical) Error() string { return "non-canonical pointer for block" }

// TestInternConcurrentEpochRollover hammers a capped interner from N
// goroutines with far more distinct blocks than the cap, forcing many
// epoch rebuilds while peers are mid-Intern. Decoded values must stay
// correct, the table must stay bounded near the cap, and once the storm
// quiesces the canonical-pointer invariant must hold again.
func TestInternConcurrentEpochRollover(t *testing.T) {
	const goroutines = 8
	const capN = 32
	const perG = 2000

	in := NewAttrsInterner(false)
	in.SetCap(capN)

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			want := new(Attrs)
			for i := 0; i < perG; i++ {
				// Overlapping ranges: goroutines fight over the same
				// blocks while the cap churns epochs beneath them.
				as := ASN(1000 + (g*perG/2+i)%(capN*8))
				w := wireFor(t, as)
				a, err := in.Intern(w)
				if err != nil {
					errs[g] = err
					return
				}
				if err := want.DecodeAttrs(w); err != nil {
					errs[g] = err
					return
				}
				if !a.Equal(want) {
					errs[g] = errNonCanonical(i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}

	if in.Epochs() == 0 {
		t.Fatal("no epoch rollover under a cap smaller than the block population")
	}
	// The cap is enforced to within the number of concurrently committing
	// workers (each checks before its own commit).
	if n := in.Len(); n > capN+goroutines {
		t.Fatalf("Len = %d, want <= cap %d + %d committers", n, capN, goroutines)
	}
	// Quiesced: interning the same wire twice lands on one pointer again.
	w := wireFor(t, 99)
	a1, err := in.Intern(w)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := in.Intern(w)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("post-storm double intern returned two pointers")
	}
}

// TestInternConcurrentSetCap flips the cap on and off while goroutines
// intern, exercising SetCap's coordination with in-flight workers (the
// race is between capN loads, commit counting and the rebuild's writer
// lock).
func TestInternConcurrentSetCap(t *testing.T) {
	const goroutines = 4
	in := NewAttrsInterner(false)

	errs := make([]error, goroutines)
	stop := make(chan struct{})
	flipperDone := make(chan struct{})
	go func() {
		defer close(flipperDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0:
				in.SetCap(16)
			case 1:
				in.SetCap(64)
			default:
				in.SetCap(0)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				if _, err := in.Intern(wireFor(t, ASN(1000+i%512))); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-flipperDone
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// FuzzInternConcurrent fuzzes the concurrent interner with
// attacker-shaped wire bytes: several goroutines intern the same
// fuzz-derived block set (plus well-formed neighbors) under an arbitrary
// cap. Decode errors must be stable across goroutines, successful
// interns must match a direct decode, and with no cap set the canonical
// pointer must be unique per block.
func FuzzInternConcurrent(f *testing.F) {
	f.Add([]byte{}, uint8(0))
	f.Add(wireFor(f, 65001), uint8(0))
	f.Add(wireFor(f, 65002), uint8(4))
	long := &Attrs{
		Origin:      OriginEGP,
		ASPath:      Path{{Type: SegSet, ASes: []ASN{1, 2, 3}}, {Type: SegSequence, ASes: []ASN{64500, 65010}}},
		NextHop:     [4]byte{192, 0, 2, 1},
		Communities: []uint32{0x00010002, 0xFFFF0000},
	}
	f.Add(long.AppendWire(nil), uint8(2))

	f.Fuzz(func(t *testing.T, data []byte, capN uint8) {
		const goroutines = 4
		in := NewAttrsInterner(false)
		if capN > 0 {
			in.SetCap(int(capN))
		}
		// The block set: the raw fuzz bytes, a truncation, and two
		// well-formed blocks to guarantee valid traffic alongside.
		blocks := [][]byte{data, wireFor(t, 64496), wireFor(t, 64497)}
		if len(data) > 2 {
			blocks = append(blocks, data[:len(data)/2])
		}

		type res struct {
			ptrs []*Attrs
			errs []bool
		}
		results := make([]res, goroutines)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := res{ptrs: make([]*Attrs, len(blocks)), errs: make([]bool, len(blocks))}
				for round := 0; round < 8; round++ {
					for i, w := range blocks {
						a, err := in.Intern(w)
						if err != nil {
							r.errs[i] = true
							continue
						}
						r.ptrs[i] = a
					}
				}
				results[g] = r
			}(g)
		}
		wg.Wait()

		want := new(Attrs)
		for i, w := range blocks {
			wantErr := want.DecodeAttrs(w) != nil
			for g := 0; g < goroutines; g++ {
				if results[g].errs[i] != wantErr {
					t.Fatalf("block %d: goroutine %d error=%v, direct decode error=%v",
						i, g, results[g].errs[i], wantErr)
				}
				if !wantErr && !results[g].ptrs[i].Equal(want) {
					t.Fatalf("block %d: interned attrs differ from direct decode", i)
				}
			}
			if capN == 0 && !wantErr {
				// No epochs possible: every goroutine saw one pointer.
				p := results[0].ptrs[i]
				for g := 1; g < goroutines; g++ {
					if results[g].ptrs[i] != p {
						t.Fatalf("block %d: canonical pointer diverged across goroutines", i)
					}
				}
			}
		}
	})
}
