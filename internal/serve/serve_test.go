package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"moas/internal/collector"
	"moas/internal/scenario"
	"moas/internal/stream"
)

// The small scenario is built once per test binary; tests that need an
// on-disk MRT archive write it into their own temp dir.
var (
	scOnce  sync.Once
	scSmall *scenario.Scenario
	scErr   error
)

func smallScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	scOnce.Do(func() { scSmall, scErr = scenario.Build(scenario.TestSpec()) })
	if scErr != nil {
		t.Fatal(scErr)
	}
	return scSmall
}

func writeArchiveFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "updates.mrt.gz")
	if err := collector.SaveUpdateArchive(path, smallScenario(t)); err != nil {
		t.Fatal(err)
	}
	return path
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, client *http.Client, url string, out any) *http.Response {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", url, err)
		}
	}
	return resp
}

// waitState polls a scenario's status endpoint until it reaches want.
func waitState(t *testing.T, client *http.Client, url, want string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		getJSON(t, client, url, &st)
		if st.State == want {
			return
		}
		if st.State == "failed" {
			t.Fatalf("%s failed: %s", url, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck in state %s, want %s", url, st.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMultiScenarioServer is the PR's acceptance test: one process serves
// two concurrent scenario replays with isolated state — one synthesized,
// one loaded from an MRT BGP4MP file on disk — and an SSE client observes
// a conflict-start event without polling.
func TestMultiScenarioServer(t *testing.T) {
	mrtPath := writeArchiveFile(t)
	reg := NewRegistry()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()
	client := srv.Client()

	// Create both scenarios; neither starts yet.
	resp, body := postJSON(t, client, srv.URL+"/scenarios",
		map[string]any{"id": "synth", "source": "synth", "scale": "small", "shards": 2})
	if resp.StatusCode != http.StatusCreated || body["state"] != "created" {
		t.Fatalf("create synth: %d %v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, client, srv.URL+"/scenarios",
		map[string]any{"id": "file", "source": "mrt", "path": mrtPath, "shards": 2, "event_buffer": 1 << 16})
	if resp.StatusCode != http.StatusCreated || body["state"] != "created" {
		t.Fatalf("create file: %d %v", resp.StatusCode, body)
	}

	var list struct {
		Count     int `json:"count"`
		Scenarios []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"scenarios"`
	}
	getJSON(t, client, srv.URL+"/scenarios", &list)
	if list.Count != 2 || list.Scenarios[0].ID != "file" || list.Scenarios[1].ID != "synth" {
		t.Fatalf("/scenarios = %+v", list)
	}

	// Subscribe to the file scenario's event stream BEFORE starting it —
	// the conflict-start observation below is push, not poll.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/scenarios/file/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	sse, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sse.Body.Close()
	if ct := sse.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	br := bufio.NewReader(sse.Body)
	line, err := br.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("SSE handshake line %q, err %v", line, err)
	}

	// Start the file replay; the synth scenario stays untouched — its
	// engine must still be empty (state isolation).
	resp, _ = postJSON(t, client, srv.URL+"/scenarios/file/start", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start file: %d", resp.StatusCode)
	}
	var stats struct {
		Messages        uint64 `json:"messages"`
		TotalConflicts  int    `json:"total_conflicts"`
		ActiveConflicts int    `json:"active_conflicts"`
	}
	getJSON(t, client, srv.URL+"/scenarios/synth/stats", &stats)
	if stats.Messages != 0 || stats.TotalConflicts != 0 {
		t.Fatalf("synth engine not isolated: %+v while file replays", stats)
	}

	// The SSE stream must push a conflict-start without any polling.
	var ev struct {
		Scenario string   `json:"scenario"`
		Type     string   `json:"type"`
		Prefix   string   `json:"prefix"`
		Origins  []uint32 `json:"origins"`
	}
	for {
		line, err = br.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream ended before conflict-start: %v", err)
		}
		if !strings.HasPrefix(line, "event: conflict-start") {
			continue
		}
		data, err := br.ReadString('\n')
		if err != nil || !strings.HasPrefix(data, "data: ") {
			t.Fatalf("conflict-start data line %q, err %v", data, err)
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(data, "data: ")), &ev); err != nil {
			t.Fatal(err)
		}
		break
	}
	if ev.Scenario != "file" || ev.Type != "conflict-start" || ev.Prefix == "" || len(ev.Origins) < 2 {
		t.Fatalf("malformed conflict-start event: %+v", ev)
	}

	// Start the synth scenario; both replays now run concurrently in one
	// process. Both derive from the same deterministic spec, so the
	// isolated engines must converge on the same conflict population.
	resp, _ = postJSON(t, client, srv.URL+"/scenarios/synth/start", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("start synth: %d", resp.StatusCode)
	}
	waitState(t, client, srv.URL+"/scenarios/file", "done")
	waitState(t, client, srv.URL+"/scenarios/synth", "done")

	var fileStats, synthStats struct {
		TotalConflicts  int `json:"total_conflicts"`
		ActiveConflicts int `json:"active_conflicts"`
	}
	getJSON(t, client, srv.URL+"/scenarios/file/stats", &fileStats)
	getJSON(t, client, srv.URL+"/scenarios/synth/stats", &synthStats)
	if fileStats.TotalConflicts == 0 || fileStats.TotalConflicts != synthStats.TotalConflicts ||
		fileStats.ActiveConflicts != synthStats.ActiveConflicts {
		t.Fatalf("file replay %+v diverges from synth replay %+v", fileStats, synthStats)
	}

	// The full stream query surface works under scenario routing.
	var conflicts struct {
		Count     int `json:"count"`
		Conflicts []struct {
			Prefix  string   `json:"prefix"`
			Origins []uint32 `json:"origins"`
		} `json:"conflicts"`
	}
	getJSON(t, client, srv.URL+"/scenarios/synth/conflicts", &conflicts)
	if conflicts.Count == 0 || len(conflicts.Conflicts) == 0 {
		t.Fatal("no conflicts served for synth scenario")
	}
	var pfx struct {
		Active bool `json:"active"`
	}
	getJSON(t, client, srv.URL+"/scenarios/synth/prefix/"+conflicts.Conflicts[0].Prefix, &pfx)
	if !pfx.Active {
		t.Fatalf("prefix %s not active under scenario routing", conflicts.Conflicts[0].Prefix)
	}
	var inv struct {
		Active int `json:"active"`
	}
	getJSON(t, client, srv.URL+"/scenarios/synth/as/"+fmt.Sprint(conflicts.Conflicts[0].Origins[0]), &inv)
	if inv.Active == 0 {
		t.Fatal("involvement empty under scenario routing")
	}

	// Lifecycle errors: restarting a done scenario conflicts; unknown ids
	// and bad configs are clean HTTP errors.
	if resp, _ = postJSON(t, client, srv.URL+"/scenarios/synth/start", struct{}{}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("restart of done scenario: %d, want 409", resp.StatusCode)
	}
	if resp := getJSON(t, client, srv.URL+"/scenarios/nope/stats", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario: %d, want 404", resp.StatusCode)
	}
	if resp, _ = postJSON(t, client, srv.URL+"/scenarios",
		map[string]any{"id": "synth", "source": "synth"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate id: %d, want 400", resp.StatusCode)
	}
	if resp, _ = postJSON(t, client, srv.URL+"/scenarios",
		map[string]any{"source": "mrt", "path": filepath.Join(t.TempDir(), "nope.mrt")}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing mrt file: %d, want 400", resp.StatusCode)
	}

	// Deleting one scenario ends its event stream and removes its routes;
	// the other keeps serving.
	req2, err := http.NewRequest("DELETE", srv.URL+"/scenarios/file", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete file: %d", resp.StatusCode)
	}
	if resp := getJSON(t, client, srv.URL+"/scenarios/file/stats", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted scenario still routed: %d", resp.StatusCode)
	}
	getJSON(t, client, srv.URL+"/scenarios/synth/conflicts", &conflicts)
	if conflicts.Count == 0 {
		t.Fatal("surviving scenario lost state after sibling delete")
	}
}

// TestSSEDisconnectUnsubscribes: cancelling the request context must
// remove the subscriber from the hub (no leak per departed client).
func TestSSEDisconnectUnsubscribes(t *testing.T) {
	reg := NewRegistry()
	s, err := reg.Create(ScenarioConfig{ID: "idle", Source: SourceSynth, Scale: "small"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/scenarios/idle/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if line, err := br.ReadString('\n'); err != nil || !strings.HasPrefix(line, ": subscribed") {
		t.Fatalf("SSE handshake line %q, err %v", line, err)
	}
	if n := s.Hub().Stats().Subscribers; n != 1 {
		t.Fatalf("%d subscribers after connect, want 1", n)
	}

	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for s.Hub().Stats().Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber not removed after client disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	reg.Delete("idle")
}

// TestPauseResumeDelete drives the pause/resume lifecycle against a paced
// replay and then deletes it mid-flight: the abort must wake the replay,
// close the hub, and leave the registry clean.
func TestPauseResumeDelete(t *testing.T) {
	reg := NewRegistry()
	s, err := reg.Create(ScenarioConfig{ID: "paced", Source: SourceSynth, Scale: "small", Shards: 2, DaysPerSec: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err == nil {
		t.Fatal("pause of a created scenario should fail")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err == nil {
		t.Fatal("double start should fail")
	}

	deadline := time.Now().Add(30 * time.Second)
	for s.Status().ClosedDays < 1 {
		if time.Now().After(deadline) {
			t.Fatal("paced replay closed no days")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err == nil {
		t.Fatal("double pause should fail")
	}
	if got := s.Status().State; got != StatePaused {
		t.Fatalf("state %s after pause", got)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := s.Resume(); err == nil {
		t.Fatal("double resume should fail")
	}

	// Delete mid-replay: aborts the paced replay promptly (the pacing
	// sleep and the record gate both watch the stop channel).
	start := time.Now()
	if !reg.Delete("paced") {
		t.Fatal("delete reported no scenario")
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Fatalf("delete of an in-flight replay took %s", took)
	}
	if reg.Get("paced") != nil {
		t.Fatal("scenario still resolvable after delete")
	}
	if closedSub, _ := s.Hub().Subscribe(1, 0, false); closedSub == nil {
		t.Fatal("subscribe after delete returned nil")
	} else if _, open := <-closedSub.C; open {
		t.Fatal("hub still accepting subscribers after delete")
	}
	if reg.Delete("paced") {
		t.Fatal("double delete reported success")
	}
}

// TestScenarioConfigValidation exercises normalize's rejections and
// defaults without HTTP.
func TestScenarioConfigValidation(t *testing.T) {
	bad := []ScenarioConfig{
		{ID: "has space"},
		{ID: "slash/ed"},
		{Source: "carrier-pigeon"},
		{Source: SourceSynth, Scale: "galactic"},
		{Source: SourceSynth, Path: "/tmp/x"},
		{Source: SourceMRT},
		{Source: SourceMRT, Path: "/nonexistent/file.mrt"},
		{Source: SourceSynth, DaysPerSec: -1},
	}
	for _, cfg := range bad {
		if err := cfg.normalize(); err == nil {
			t.Fatalf("config %+v passed validation", cfg)
		}
	}

	cfg := ScenarioConfig{}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Source != SourceSynth || cfg.Scale != "small" || cfg.History != 256 || cfg.EventBuffer != 1024 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.defaultID() != "small" {
		t.Fatalf("defaultID = %q", cfg.defaultID())
	}
	mrt := ScenarioConfig{Source: SourceMRT, Path: "/data/rrc00.updates.mrt.gz"}
	if got := mrt.defaultID(); got != "rrc00.updates" {
		t.Fatalf("mrt defaultID = %q", got)
	}

	// The stress scale has no scenario spec but is a valid synth scale:
	// it streams the internal/synth workload straight into the engine.
	stress := ScenarioConfig{Source: SourceSynth, Scale: ScaleStress}
	if err := stress.normalize(); err != nil {
		t.Fatalf("stress scale rejected: %v", err)
	}
	if stress.defaultID() != "stress" {
		t.Fatalf("stress defaultID = %q", stress.defaultID())
	}
	if _, err := specFor(ScaleStress); err == nil {
		t.Fatal("specFor(stress) returned a spec; stress must bypass the scenario pipeline")
	}
	restored := ScenarioConfig{Source: SourceCheckpoint, Checkpoint: &ScenarioCheckpoint{
		Version: ScenarioCheckpointVersion,
		Config:  ScenarioConfig{Source: SourceSynth, Scale: ScaleStress},
		Engine:  &stream.Checkpoint{},
	}}
	if err := restored.normalize(); err != nil {
		t.Fatalf("stress checkpoint config rejected: %v", err)
	}
}
