package supervise

import (
	"errors"
	"strings"
	"testing"
)

func TestRunPassesThrough(t *testing.T) {
	if err := Run("ok", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	want := errors.New("plain failure")
	err := Run("plain", func() error { return want })
	if err != want {
		t.Fatalf("error not passed through: %v", err)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatal("plain error classified as panic")
	}
}

func TestRunCapturesPanic(t *testing.T) {
	err := Run("shard worker", func() error {
		panic("disk exploded")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T %v", err, err)
	}
	if pe.Name != "shard worker" || pe.Value != "disk exploded" {
		t.Fatalf("PanicError %+v", pe)
	}
	if !strings.Contains(pe.Error(), "panic in shard worker: disk exploded") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	if pe.Stack == "" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if len(pe.Stack) > maxStack {
		t.Fatalf("stack not truncated: %d bytes", len(pe.Stack))
	}
}

func TestRunCapturesErrorPanic(t *testing.T) {
	boom := errors.New("boom")
	err := Run("worker", func() error { panic(boom) })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Value != any(boom) {
		t.Fatalf("panic value %v", pe.Value)
	}
}

func TestAsErrorNil(t *testing.T) {
	if AsError("x", nil) != nil {
		t.Fatal("AsError(nil) != nil")
	}
}

func TestGoDeliversOutcome(t *testing.T) {
	ch := make(chan error, 1)
	Go("bg", func() error { panic(42) }, func(err error) { ch <- err })
	err := <-ch
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != 42 {
		t.Fatalf("Go outcome: %v", err)
	}
	Go("bg2", func() error { return nil }, func(err error) { ch <- err })
	if err := <-ch; err != nil {
		t.Fatal(err)
	}
}
