package scenario

import (
	"math"
	"math/rand"
)

// DurationMix is the background conflict-duration mixture, calibrated so
// the detected duration statistics reproduce the paper's Figure 4 (see
// DESIGN.md §5 and the derivation in defaults.go):
//
//   - WOneDay: conflicts observed a single day ("lasting less than one
//     day" in the paper's terms);
//   - WShort: 2..9-day conflicts, uniform;
//   - WTail: a discrete power law (Pareto, exponent Alpha) on
//     [TailMin, TailMax] days — the heavy tail that produces the paper's
//     conditional expectations 107.5 / 175.3 / 281.8 days and its ~1000
//     conflicts lasting beyond 300 days.
type DurationMix struct {
	WOneDay float64
	WShort  float64
	WTail   float64

	TailMin, TailMax float64
	Alpha            float64

	// TailStretch converts observed-day targets to calendar-day samples,
	// compensating for archive gap days (observed ≈ calendar × 1279/1349).
	TailStretch float64
}

// normalize rescales the weights to sum to 1.
func (m *DurationMix) normalize() {
	s := m.WOneDay + m.WShort + m.WTail
	m.WOneDay /= s
	m.WShort /= s
	m.WTail /= s
}

// Sample draws a duration in calendar days (≥1).
func (m *DurationMix) Sample(r *rand.Rand) int {
	x := r.Float64()
	switch {
	case x < m.WOneDay:
		return 1
	case x < m.WOneDay+m.WShort:
		return 2 + r.Intn(8) // uniform 2..9
	}
	return int(math.Round(m.sampleTail(r) * m.TailStretch))
}

// sampleTail draws from the truncated Pareto via inverse CDF.
func (m *DurationMix) sampleTail(r *rand.Rand) float64 {
	// F(x) ∝ x^(1-α) on [min,max]; invert.
	a, b, alpha := m.TailMin, m.TailMax, m.Alpha
	u := r.Float64()
	pa := math.Pow(a, 1-alpha)
	pb := math.Pow(b, 1-alpha)
	return math.Pow(pa+u*(pb-pa), 1/(1-alpha))
}

// MeanCalendarDays returns the analytic expectation of Sample, used to set
// arrival rates from the target active-conflict counts (Little's law:
// active ≈ arrival rate × mean duration).
func (m *DurationMix) MeanCalendarDays() float64 {
	a, b, alpha := m.TailMin, m.TailMax, m.Alpha
	// Mean of the truncated Pareto: ∫x·x^-α / ∫x^-α over [a,b].
	num := (math.Pow(b, 2-alpha) - math.Pow(a, 2-alpha)) / (2 - alpha)
	den := (math.Pow(b, 1-alpha) - math.Pow(a, 1-alpha)) / (1 - alpha)
	tailMean := num / den * m.TailStretch
	return m.WOneDay*1 + m.WShort*5.5 + m.WTail*tailMean
}

// poisson draws a Poisson-distributed count via Knuth's method; the rates
// in this scenario are small (≈10-20/day) so the loop is short.
func poisson(r *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 { // unreachable at scenario rates; guards corrupt input
			return k
		}
	}
}
